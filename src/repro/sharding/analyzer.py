"""Partition analyzer: decide how each registered query can be sharded.

The engine already discovers a query's *partition scheme* (the full-cover
equality class behind PAIS, ``repro.lang.semantics._find_partition``) to
hash active instances into per-value stacks.  The sharded runtime reuses
exactly that analysis one level up: if every positive component keys on
one attribute, the *stream itself* can be hash-partitioned across worker
shards and each shard runs an independent replica of the query over its
slice of the key space.

Classification per query:

``keyed``
    Has a partition scheme, reads the default stream, publishes no INTO
    stream, and calls no functions.  Events route to ``hash(key) % N``.
    Event types of negated components outside the equality class are
    *fanned out* to every shard (any shard's match could be invalidated
    by them).
``broadcast``
    Pure and stream-only but without a usable partition key.  The query
    cannot parallelise; it runs whole on one *home shard* and every
    default-stream event is broadcast there.
``local``
    Calls functions (``_retrieveLocation`` needs the coordinator's event
    database), takes part in INTO/FROM composition (cascades must see
    the merged stream), or was registered from a pre-compiled object.
    Local queries execute synchronously in the coordinator, preserving
    exactly the classic semantics.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.core.plan import PlanConfig
from repro.lang.ast import AggregateCall, BinaryOp, FunctionCall, UnaryOp

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system.processor import RegisteredQuery


def stable_hash(value: Any) -> int:
    """A process-stable hash for routing keys (``hash()`` of strings is
    salted per interpreter, which would make shard assignment — and the
    merger's shard-id tie-break — vary between runs)."""
    return zlib.crc32(repr(value).encode("utf-8", "backslashreplace"))


def _calls_function(expr: Any) -> bool:
    if isinstance(expr, FunctionCall):
        return True
    if isinstance(expr, BinaryOp):
        return _calls_function(expr.left) or _calls_function(expr.right)
    if isinstance(expr, UnaryOp):
        return _calls_function(expr.operand)
    if isinstance(expr, AggregateCall):
        return expr.arg is not None and _calls_function(expr.arg)
    return False


@dataclass(frozen=True)
class QueryShardInfo:
    """One query's shardability verdict."""

    name: str
    rank: int                       # registration order (merge key)
    mode: str                       # "keyed" | "broadcast" | "local"
    reason: str
    text: str = ""
    plan_config: PlanConfig | None = None
    keyed: dict = field(default_factory=dict)       # event type -> attr
    fanout_types: frozenset = frozenset()
    needs_watermark: bool = False

    @property
    def distributed(self) -> bool:
        return self.mode in ("keyed", "broadcast")


@dataclass(frozen=True)
class GroupSpec:
    """A set of co-routed queries one worker-side processor hosts.

    Keyed groups are replicated on every shard and receive the slice of
    the stream their routing map selects; broadcast groups exist on one
    home shard only and receive the whole default stream.
    """

    group_id: int
    kind: str                       # "keyed" | "broadcast"
    queries: tuple = ()             # (rank, name, text, plan_config)
    keyed: dict = field(default_factory=dict)
    fanout_types: frozenset = frozenset()
    needs_watermark: bool = False
    home_shard: int = 0             # broadcast groups only


@dataclass
class ShardPlan:
    """The routing decision for one registered query set."""

    shards: int
    infos: list[QueryShardInfo]
    groups: list[GroupSpec]
    local_names: frozenset

    @property
    def distributed_count(self) -> int:
        return sum(1 for info in self.infos if info.distributed)

    def describe(self) -> str:
        lines = [f"Shard plan ({self.shards} shard(s), "
                 f"{self.distributed_count} distributed, "
                 f"{len(self.local_names)} local):"]
        for info in self.infos:
            detail = info.reason
            if info.mode == "keyed":
                keys = ", ".join(f"{etype}.{attr}" for etype, attr
                                 in sorted(info.keyed.items()))
                detail = f"routed on [{keys}]"
                if info.fanout_types:
                    detail += (f", fanout {{"
                               f"{', '.join(sorted(info.fanout_types))}}}")
                if info.needs_watermark:
                    detail += ", watermarked"
            lines.append(f"  {info.name}: {info.mode} ({detail})")
        return "\n".join(lines)


def classify_query(name: str, rank: int,
                   registered: "RegisteredQuery",
                   default_stream: str) -> QueryShardInfo:
    """Decide how one registered query may execute under sharding."""
    analyzed = registered.compiled.analyzed
    text = analyzed.query.text
    plan_config = registered.compiled.plan.config

    def local(reason: str) -> QueryShardInfo:
        return QueryShardInfo(name=name, rank=rank, mode="local",
                              reason=reason, text=text,
                              plan_config=plan_config)

    if not text.strip():
        return local("registered without source text")
    exprs = [info.expr for info in analyzed.selection_predicates]
    for infos in (*analyzed.component_filters.values(),
                  *analyzed.negation_predicates.values(),
                  *analyzed.kleene_predicates.values()):
        exprs.extend(info.expr for info in infos)
    exprs.extend(item.expr for item in analyzed.return_items)
    if any(_calls_function(expr) for expr in exprs):
        return local("calls system functions")
    if registered.input_stream != default_stream or \
            analyzed.output_stream is not None:
        return local("INTO/FROM stream composition")

    def broadcast(reason: str) -> QueryShardInfo:
        return QueryShardInfo(name=name, rank=rank, mode="broadcast",
                              reason=reason, text=text,
                              plan_config=plan_config)

    partition = analyzed.partition
    if partition is None:
        return broadcast("no full-cover partition key")

    keyed: dict[str, str] = {}
    fanout: set[str] = set()
    for component in analyzed.components:
        attr = partition.attr_by_var.get(component.variable)
        for event_type in component.event_types:
            if attr is None:
                fanout.add(event_type)
            elif keyed.get(event_type, attr) != attr:
                return broadcast(
                    f"type {event_type} keyed on conflicting attributes")
            else:
                keyed[event_type] = attr
    if fanout & set(keyed):
        return broadcast("a fanned-out type is also a keyed type")
    needs_watermark = any(
        next_index >= len(analyzed.positives)
        for _, _, next_index in analyzed.negation_layout())
    return QueryShardInfo(name=name, rank=rank, mode="keyed",
                          reason="partition scheme", text=text,
                          plan_config=plan_config, keyed=keyed,
                          fanout_types=frozenset(fanout),
                          needs_watermark=needs_watermark)


def build_shard_plan(queries: "list[RegisteredQuery]", shards: int,
                     default_stream: str) -> ShardPlan:
    """Classify every query and form worker groups.

    Keyed queries with identical routing signatures share one group (one
    worker-side processor); each distinct signature routes independently.
    A query publishing INTO the default stream would cascade into the
    keyed queries' input, so that degenerate layout forces everything
    local.
    """
    infos = [classify_query(registered.name, rank, registered,
                            default_stream)
             for rank, registered in enumerate(queries)]

    into_default = any(
        registered.output_stream == default_stream
        for registered in queries)
    if into_default:
        infos = [QueryShardInfo(name=info.name, rank=info.rank,
                                mode="local",
                                reason="a query publishes INTO the "
                                       "default stream",
                                text=info.text,
                                plan_config=info.plan_config)
                 for info in infos]

    groups: list[GroupSpec] = []
    keyed_signature_to_group: dict[tuple, int] = {}
    broadcast_home_to_group: dict[int, int] = {}
    for info in infos:
        if info.mode == "keyed":
            signature = (frozenset(info.keyed.items()), info.fanout_types)
            index = keyed_signature_to_group.get(signature)
            if index is None:
                index = len(groups)
                keyed_signature_to_group[signature] = index
                groups.append(GroupSpec(
                    group_id=index, kind="keyed", keyed=dict(info.keyed),
                    fanout_types=info.fanout_types))
            group = groups[index]
            groups[index] = GroupSpec(
                group_id=index, kind="keyed", keyed=group.keyed,
                fanout_types=group.fanout_types,
                needs_watermark=group.needs_watermark
                or info.needs_watermark,
                queries=group.queries + (
                    (info.rank, info.name, info.text, info.plan_config),))
        elif info.mode == "broadcast":
            home = stable_hash(info.name) % shards
            index = broadcast_home_to_group.get(home)
            if index is None:
                index = len(groups)
                broadcast_home_to_group[home] = index
                groups.append(GroupSpec(group_id=index, kind="broadcast",
                                        home_shard=home))
            group = groups[index]
            groups[index] = GroupSpec(
                group_id=index, kind="broadcast", home_shard=home,
                queries=group.queries + (
                    (info.rank, info.name, info.text, info.plan_config),))

    local_names = frozenset(info.name for info in infos
                            if info.mode == "local")
    return ShardPlan(shards=shards, infos=infos, groups=groups,
                     local_names=local_names)
