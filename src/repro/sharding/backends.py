"""Pluggable shard executors: inline, thread, and process backends.

All three run the same :class:`~repro.sharding.worker.ShardWorkerCore`;
they differ only in transport and failure model:

* **inline** — cores live in the coordinator and batches execute
  synchronously on submit.  Fully deterministic, zero concurrency; the
  backend differential tests and the default configuration use it.
* **thread** — one daemon thread per shard with bounded ``queue.Queue``
  channels.  Useful for overlap with I/O-bound callables and for
  exercising the asynchronous protocol without processes (the GIL caps
  CPU parallelism).
* **process** — one ``multiprocessing`` worker per shard with bounded
  queues and batched IPC.  The submit path *blocks* when a shard's queue
  is full (backpressure) instead of buffering unboundedly, and every
  batch is journaled: a worker that dies mid-batch is detected, its shard
  restarted, the journal replayed into the fresh worker, and duplicate
  responses suppressed — results are exactly-once even across a kill.

When a :class:`~repro.resilience.ShardSupervisor` is attached (via
``SaseSystem(resilience=...)``), both asynchronous backends gain the
full failure ladder: journaled restart for the thread backend too (a
wedged thread cannot be killed, but it *can* be abandoned and its shard
rebuilt on a fresh thread + queue), hang detection with a configurable
budget, and a per-shard circuit breaker that stops restarting a
repeatedly-failing shard and degrades instead (the router flags matches
as incomplete).  Without a supervisor, behavior is exactly the PR 1
semantics: threads don't restart, processes restart without limit.
"""

from __future__ import annotations

import contextlib
import queue as queue_module
import threading
import time
from pickle import UnpicklingError
from typing import Callable

from repro.errors import SaseError
from repro.resilience.retry import retry_call
from repro.resilience.supervisor import HALF_OPEN
from repro.sharding.transport import AdaptiveWaiter, CoordinatorChannel, \
    DEFAULT_RING_BYTES, RingTorn, park_for_responses
from repro.sharding.worker import EVENT_ENTRY, ShardWorkerCore, \
    WorkerSpec, process_worker_main

# How long one blocking put/get waits before re-checking worker liveness.
_STALL_TICK = 0.05
# Park-sleep ceiling of the coordinator's wait loop.  Large enough that
# an idle coordinator wakes ~50×/s instead of 200×/s, small enough that
# hang budgets (seconds) are still checked promptly.
_WAIT_PARK_MAX = 0.02
# Shutdown budgets: nothing in stop() may wait longer than these, so a
# wedged worker can never hang ``SaseSystem.close()``.
_STOP_PUT_TIMEOUT = 0.25
_STOP_JOIN_TIMEOUT = 2.0


class ShardBackend:
    """Transport-agnostic base: bookkeeping for outstanding work."""

    synchronous = False

    def __init__(self, shards: int, spec: WorkerSpec, metrics,
                 queue_capacity: int, response_timeout: float):
        self.shards = shards
        self.spec = spec
        self.metrics = metrics
        self.queue_capacity = queue_capacity
        self.response_timeout = response_timeout
        self.supervisor = None      # attached by make_backend before start
        self.on_shard_lost = None   # router callback, same
        self._outstanding: set[tuple] = set()   # ("batch", shard, id) ...
        self._lost: set[int] = set()
        self._shard_load = [0] * shards  # outstanding batches per shard
        # Wait-loop profile (the backend quacks like ShardMetrics for
        # AdaptiveWaiter): sched-yield spins vs backoff park sleeps
        # spent in wait().  The E20 idle-overhead harness asserts the
        # park rate stays far below the old fixed 5 ms tick's 200/s.
        self.spin_waits = 0
        self.park_waits = 0

    # -- bookkeeping shared by every transport -------------------------------

    def outstanding(self) -> int:
        return len(self._outstanding)

    def overloaded(self, shard: int) -> bool:
        """True when the shard is saturated: as many batches are in
        flight as its bounded queue can hold, so the next sealed batch
        would (or will shortly) block the coordinator."""
        return self._shard_load[shard] >= self.queue_capacity

    def shard_lost(self, shard: int) -> bool:
        return shard in self._lost

    def lost_shards(self) -> frozenset[int]:
        return frozenset(self._lost)

    def shard_available(self, shard: int) -> bool:
        """True when the shard can take work.  Overridden by the
        bounded backends to attempt a half-open revival probe."""
        return shard not in self._lost

    def _note_submitted(self, shard: int, batch_id: int) -> None:
        self._outstanding.add(("batch", shard, batch_id))
        self._shard_load[shard] += 1

    def _note_flush_sent(self, shard: int, flush_id: int) -> None:
        self._outstanding.add(("flush", shard, flush_id))

    def _accept(self, response: tuple) -> tuple | None:
        """Mark a raw worker response received; None when duplicate."""
        opcode = response[0]
        if opcode == "error":
            # An error IS the response to the request it names: retire
            # that request's bookkeeping before raising, otherwise a
            # caller that catches the SaseError and continues is left
            # with a phantom in-flight batch — the shard reads as
            # permanently overloaded() and drain barriers wait forever
            # for a response that already arrived.
            shard = response[1]
            context = response[2] if len(response) == 4 else None
            if context is not None:
                key = (context[0], shard, context[1])
                if key in self._outstanding:
                    self._outstanding.discard(key)
                    if context[0] == "batch":
                        self._shard_load[shard] -= 1
            raise SaseError(
                f"shard {shard} worker failed:\n{response[-1]}")
        key = (opcode, response[1], response[2])
        if key not in self._outstanding:
            return None  # replayed duplicate after a restart
        self._outstanding.discard(key)
        shard = response[1]
        if opcode == "batch":
            self._shard_load[shard] -= 1
        self.metrics.shard(shard).results_received += len(response[3])
        if self.supervisor is not None:
            # A real response from the shard: closes a half-open breaker.
            self.supervisor.record_success(shard)
        return response

    def _has_outstanding(self, shard: int) -> bool:
        return any(key[1] == shard for key in self._outstanding)

    def _forget_shard(self, shard: int) -> None:
        """Drop all outstanding bookkeeping for an abandoned shard so
        drain/flush barriers cannot wait on responses that will never
        come."""
        for key in [key for key in self._outstanding if key[1] == shard]:
            self._outstanding.discard(key)
        self._shard_load[shard] = 0

    # -- transport interface -------------------------------------------------

    def start(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def submit(self, shard: int, batch_id: int, entries: list) -> None:
        raise NotImplementedError  # pragma: no cover

    def send_flush(self, flush_id: int) -> None:
        raise NotImplementedError  # pragma: no cover

    def poll(self) -> list[tuple]:
        raise NotImplementedError  # pragma: no cover

    def wait(self) -> list[tuple]:
        """Block until at least one response arrives (or raise after
        ``response_timeout`` seconds without progress).  With a
        supervisor attached, a shard that makes no progress for the hang
        budget is failed over (restart or breaker) instead of letting
        the whole runtime time out."""
        deadline = time.monotonic() + self.response_timeout
        supervisor = self.supervisor
        hang_at = (time.monotonic() + supervisor.hang_timeout
                   if supervisor is not None else None)
        # Spin-then-park instead of a fixed 5 ms tick: a response that
        # is microseconds away is caught by a sched-yield, and a genuine
        # wait backs off geometrically so an idle coordinator stops
        # burning a core (the old tick cost 200 wakeups/s regardless).
        waiter = AdaptiveWaiter(max_park=_WAIT_PARK_MAX, metrics=self)
        while True:
            responses = self.poll()
            if responses:
                return responses
            if not self._outstanding:
                return []
            now = time.monotonic()
            if hang_at is not None and now >= hang_at:
                self._recover_stalled()
                hang_at = time.monotonic() + supervisor.hang_timeout
                deadline = max(deadline,
                               time.monotonic() + self.response_timeout)
                continue
            if now > deadline:
                raise SaseError(
                    f"sharded runtime made no progress for "
                    f"{self.response_timeout:g}s; "
                    f"{len(self._outstanding)} response(s) outstanding")
            self._idle_wait(waiter)

    def _idle_wait(self, waiter: AdaptiveWaiter) -> None:
        """One idle step of the wait loop.  The ring backend overrides
        this with an event park (a worker wakeup ends the wait at
        semaphore latency instead of the next poll)."""
        waiter.wait()

    def _recover_stalled(self) -> None:  # pragma: no cover - overridden
        """Hook: fail over shards that hold outstanding work but have
        produced nothing for a full hang budget."""

    def stop(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def worker_pids(self) -> dict[int, int]:
        return {}


class InlineBackend(ShardBackend):
    """Deterministic single-process execution; batches run on submit."""

    synchronous = True

    def start(self) -> None:
        self._cores = [ShardWorkerCore(shard, self.spec)
                       for shard in range(self.shards)]
        self._responses: list[tuple] = []

    def submit(self, shard: int, batch_id: int, entries: list) -> None:
        self._note_submitted(shard, batch_id)
        tagged, delta, spans = self._cores[shard].process_batch(entries)
        self._responses.append(("batch", shard, batch_id, tagged, delta,
                                spans))

    def send_flush(self, flush_id: int) -> None:
        for shard in range(self.shards):
            self._note_flush_sent(shard, flush_id)
            tagged, delta, spans = self._cores[shard].flush()
            self._responses.append(("flush", shard, flush_id, tagged,
                                    delta, spans))

    def poll(self) -> list[tuple]:
        accepted = [self._accept(response)
                    for response in self._responses]
        self._responses.clear()
        return [response for response in accepted if response is not None]

    def stop(self) -> None:
        self._cores = []


class _BoundedChannelBackend(ShardBackend):
    """Shared logic for thread/process backends: bounded per-shard input
    queues with stall-counting blocking puts, plus the journaled
    restart / hang-failover / circuit-breaker ladder when supervised."""

    #: The process backend journals even without a supervisor (PR 1
    #: behavior); the thread backend journals only when supervised.
    _always_journal = False
    #: Transport string passed to workers (chaos scoping).
    _transport = "thread"

    def start(self) -> None:
        self._stopping = False
        self._lost = set()
        self._shard_load = [0] * self.shards
        self._incarnations = [0] * self.shards
        self._journal: list[list[tuple[int, list]]] | None = None
        if self._always_journal or self.supervisor is not None:
            self._journal = [[] for _ in range(self.shards)]
        self._pending_flush: dict[int, int] = {}
        self._start_transport()
        for shard in range(self.shards):
            self._spawn(shard)

    # -- transport hooks -----------------------------------------------------

    def _start_transport(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def _spawn(self, shard: int) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def _alive(self, shard: int) -> bool:  # pragma: no cover - overridden
        raise NotImplementedError

    def _terminate(self, shard: int) -> None:
        """Best-effort teardown of a failed worker (no-op for threads)."""

    def _drain_responses(self) -> list[tuple]:  # pragma: no cover
        raise NotImplementedError

    def _channel_put(self, shard: int, message: tuple,
                     timeout: float | None) -> None:
        """One put on the shard's input channel.  ``queue.Full`` always
        propagates (backpressure); transports may retry transient
        transport errors underneath."""
        if timeout is None:
            self._in_queues[shard].put_nowait(message)
        else:
            self._in_queues[shard].put(message, timeout=timeout)

    # -- failure ladder ------------------------------------------------------

    def _on_dead_worker(self, shard: int) -> None:
        if self._journal is None:
            raise SaseError(
                f"shard {shard} worker thread died unexpectedly")
        self._fail_worker(shard, "crash")

    def _fail_worker(self, shard: int, reason: str) -> None:
        """A worker crashed or hung: tear down what is left of it, then
        either restart-with-replay or abandon the shard, as the breaker
        allows."""
        if self._stopping or shard in self._lost:
            return
        self._terminate(shard)
        supervisor = self.supervisor
        if reason == "hang":
            self.metrics.shard(shard).worker_hangs += 1
        if supervisor is not None:
            supervisor.emit("fault", shard, {
                "kind": reason, "incarnation": self._incarnations[shard]})
            allowed = supervisor.record_failure(shard)
        else:
            allowed = True  # unsupervised process backend: PR 1 semantics
        if allowed and self._journal is not None:
            self._restart(shard)
        else:
            self._lose_shard(shard)

    def _restart(self, shard: int) -> None:
        """Replace a failed worker, replay its journal, resend any
        pending flush.  Replayed responses the coordinator already
        consumed are suppressed by :meth:`_accept`'s outstanding check."""
        self._incarnations[shard] += 1
        incarnation = self._incarnations[shard]
        shard_metrics = self.metrics.shard(shard)
        shard_metrics.worker_restarts += 1
        shard_metrics.batches_replayed += len(self._journal[shard])
        self._spawn(shard)
        if self.supervisor is not None:
            self.supervisor.emit("restart", shard, {
                "incarnation": incarnation,
                "replayed": len(self._journal[shard])})
        for batch_id, entries in self._journal[shard]:
            if (shard in self._lost
                    or self._incarnations[shard] != incarnation):
                # A nested failure during replay either exhausted the
                # breaker or already replayed the full journal itself.
                return
            self._put_with_backpressure(
                shard, ("batch", batch_id, entries),
                alive=lambda: self._alive(shard),
                on_dead=lambda: self._fail_worker(shard, "crash"))
        if (shard not in self._lost
                and self._incarnations[shard] == incarnation
                and shard in self._pending_flush):
            self._put_with_backpressure(
                shard, ("flush", self._pending_flush[shard]),
                alive=lambda: self._alive(shard),
                on_dead=lambda: self._fail_worker(shard, "crash"))

    def _lose_shard(self, shard: int) -> None:
        """Abandon a shard: degraded mode.  Outstanding work is
        forgotten so barriers can't deadlock, and the router is told so
        it can flag results as incomplete."""
        if shard in self._lost:
            return
        self._lost.add(shard)
        self._terminate(shard)
        lost_events = 0
        if self._journal is not None:
            unacked = {key[2] for key in self._outstanding
                       if key[0] == "batch" and key[1] == shard}
            for batch_id, entries in self._journal[shard]:
                if batch_id in unacked:
                    lost_events += sum(1 for entry in entries
                                       if entry[0] == EVENT_ENTRY)
        if self.supervisor is not None:
            self.supervisor.force_open(shard)
            self.supervisor.emit("lost", shard, {"events": lost_events})
        self._forget_shard(shard)
        if self.on_shard_lost is not None:
            self.on_shard_lost(shard, lost_events)

    def shard_available(self, shard: int) -> bool:
        if shard not in self._lost:
            return True
        supervisor = self.supervisor
        if (supervisor is None or self._journal is None
                or supervisor.state(shard) != HALF_OPEN):
            return False
        # Half-open probe: revive the shard; the first accepted response
        # closes the breaker, another failure re-opens it immediately.
        self._lost.discard(shard)
        self._restart(shard)
        return shard not in self._lost

    def _recover_stalled(self) -> None:
        for shard in range(self.shards):
            if shard in self._lost or not self._has_outstanding(shard):
                continue
            self._fail_worker(
                shard, "hang" if self._alive(shard) else "crash")

    # -- transport -----------------------------------------------------------

    def submit(self, shard: int, batch_id: int, entries: list) -> None:
        if shard in self._lost:  # defensive: the router skips lost shards
            return
        self._note_submitted(shard, batch_id)
        if self._journal is not None:
            self._journal[shard].append((batch_id, entries))
        if not self._alive(shard):
            self._on_dead_worker(shard)  # replay delivers this batch too
            return
        self._put_with_backpressure(
            shard, ("batch", batch_id, entries),
            alive=lambda: self._alive(shard),
            on_dead=lambda: self._on_dead_worker(shard))

    def send_flush(self, flush_id: int) -> None:
        for shard in range(self.shards):
            if shard in self._lost:
                continue
            self._note_flush_sent(shard, flush_id)
            self._pending_flush[shard] = flush_id
            if not self._alive(shard):
                self._on_dead_worker(shard)  # restart resends the flush
                continue
            self._put_with_backpressure(
                shard, ("flush", flush_id),
                alive=lambda s=shard: self._alive(s),
                on_dead=lambda s=shard: self._on_dead_worker(s))

    def poll(self) -> list[tuple]:
        responses = self._drain_responses()
        if not responses and self._journal is not None \
                and not self._stopping:
            for shard in range(self.shards):
                if shard not in self._lost \
                        and self._has_outstanding(shard) \
                        and not self._alive(shard):
                    self._fail_worker(shard, "crash")
        return responses

    def _put_with_backpressure(self, shard: int, message: tuple,
                               alive: Callable[[], bool],
                               on_dead: Callable[[], None]) -> None:
        try:
            self._channel_put(shard, message, None)
            return
        except queue_module.Full:
            self.metrics.shard(shard).queue_full_stalls += 1
        supervisor = self.supervisor
        deadline = time.monotonic() + self.response_timeout
        hang_at = (time.monotonic() + supervisor.hang_timeout
                   if supervisor is not None else None)
        while True:
            if shard in self._lost:
                return
            if not alive():
                on_dead()
                return
            try:
                # Re-resolve the queue: a restart swaps in a fresh one.
                self._channel_put(shard, message, _STALL_TICK)
                return
            except queue_module.Full:
                now = time.monotonic()
                if hang_at is not None and now >= hang_at:
                    # Alive but its queue has not drained for a full
                    # hang budget: treat the worker as wedged.  The
                    # journal replay (or shard loss) covers ``message``.
                    self._fail_worker(shard, "hang")
                    return
                if now > deadline:
                    raise SaseError(
                        f"shard {shard} queue stayed full for "
                        f"{self.response_timeout:g}s (backpressure "
                        f"deadlock?)") from None

    def stop(self) -> None:
        self._stopping = True
        for shard in range(self.shards):
            if shard in self._lost:
                continue
            with contextlib.suppress(Exception):
                self._channel_put(shard, ("stop",), _STOP_PUT_TIMEOUT)
        self._shutdown_transport()

    def _shutdown_transport(self) -> None:  # pragma: no cover
        raise NotImplementedError


class ThreadBackend(_BoundedChannelBackend):
    """One worker thread per shard.  Threads cannot be killed, so
    unsupervised they have no restart machinery (a dead thread raises).
    Supervised, a crashed *or wedged* thread's shard is rebuilt on a
    fresh thread + queue and its journal replayed; the wedged thread
    itself is simply abandoned (it is a daemon)."""

    _transport = "thread"

    def _start_transport(self) -> None:
        self._in_queues: list = [None] * self.shards
        self._workers: list = [None] * self.shards
        self._out_queue: queue_module.Queue = queue_module.Queue()

    def _spawn(self, shard: int) -> None:
        in_queue = queue_module.Queue(maxsize=self.queue_capacity)
        self._in_queues[shard] = in_queue
        thread = threading.Thread(
            target=process_worker_main,
            args=(shard, self.spec, in_queue, self._out_queue),
            kwargs={"transport": "thread",
                    "incarnation": self._incarnations[shard]},
            name=f"sase-shard-{shard}", daemon=True)
        thread.start()
        self._workers[shard] = thread

    def _alive(self, shard: int) -> bool:
        return self._workers[shard].is_alive()

    def _drain_responses(self) -> list[tuple]:
        responses = []
        while True:
            try:
                raw = self._out_queue.get_nowait()
            except queue_module.Empty:
                break
            accepted = self._accept(raw)
            if accepted is not None:
                responses.append(accepted)
        return responses

    def _shutdown_transport(self) -> None:
        for thread in self._workers:
            if thread is not None:
                thread.join(timeout=_STOP_JOIN_TIMEOUT)
        # A thread that failed to exit is wedged; it is a daemon, so it
        # is abandoned rather than allowed to hang shutdown.


class ProcessBackend(_BoundedChannelBackend):
    """One worker process per shard, with journal-replay fault recovery."""

    _always_journal = True
    _transport = "process"

    def __init__(self, shards: int, spec: WorkerSpec, metrics,
                 queue_capacity: int, response_timeout: float):
        super().__init__(shards, spec, metrics, queue_capacity,
                         response_timeout)
        import multiprocessing
        methods = multiprocessing.get_all_start_methods()
        self._context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")

    def _start_transport(self) -> None:
        self._in_queues: list = [None] * self.shards
        self._out_queues: list = [None] * self.shards
        self._workers: list = [None] * self.shards

    def _spawn(self, shard: int) -> None:
        in_queue = self._context.Queue(maxsize=self.queue_capacity)
        out_queue = self._context.Queue()
        process = self._context.Process(
            target=process_worker_main,
            args=(shard, self.spec, in_queue, out_queue),
            kwargs={"transport": "process",
                    "incarnation": self._incarnations[shard]},
            name=f"sase-shard-{shard}", daemon=True)
        process.start()
        self._in_queues[shard] = in_queue
        self._out_queues[shard] = out_queue
        self._workers[shard] = process

    def _alive(self, shard: int) -> bool:
        return self._workers[shard].is_alive()

    def _terminate(self, shard: int) -> None:
        process = self._workers[shard]
        if process is None:
            return
        with contextlib.suppress(Exception):
            process.terminate()
            process.join(timeout=1.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=1.0)

    def _channel_put(self, shard: int, message: tuple,
                     timeout: float | None) -> None:
        # Transient IPC errors (EINTR, pipe hiccups) are retried with
        # backoff; ``queue.Full`` is backpressure and always propagates.
        retry_call(
            lambda: super(ProcessBackend, self)._channel_put(
                shard, message, timeout),
            retry_on=(OSError,), attempts=3, base_delay=0.001,
            max_delay=0.02)

    def _drain_responses(self) -> list[tuple]:
        responses = []
        for shard in range(self.shards):
            out_queue = self._out_queues[shard]
            if out_queue is None:
                continue
            while True:
                try:
                    raw = out_queue.get_nowait()
                except queue_module.Empty:
                    break
                except (OSError, EOFError, UnpicklingError):
                    # A SIGKILL mid-write leaves crash debris — a broken
                    # pipe or a truncated pickle; the journal replay
                    # regenerates whatever was lost.  Anything else is a
                    # real decode/logic error and must propagate, not be
                    # silently dropped as if the worker had crashed.
                    break
                accepted = self._accept(raw)
                if accepted is not None:
                    responses.append(accepted)
        return responses

    def _shutdown_transport(self) -> None:
        self._join_workers()
        for a_queue in (*self._in_queues, *self._out_queues):
            if a_queue is None:
                continue
            with contextlib.suppress(Exception):
                a_queue.cancel_join_thread()
                a_queue.close()

    def _join_workers(self) -> None:
        for process in self._workers:
            if process is not None:
                process.join(timeout=_STOP_JOIN_TIMEOUT)
        for process in self._workers:
            if process is not None and process.is_alive():
                with contextlib.suppress(Exception):
                    process.terminate()
        for process in self._workers:
            if process is not None and process.is_alive():
                process.join(timeout=1.0)
                if process.is_alive():  # pragma: no cover - stubborn worker
                    with contextlib.suppress(Exception):
                        process.kill()
                        process.join(timeout=1.0)

    def worker_pids(self) -> dict[int, int]:
        return {shard: process.pid
                for shard, process in enumerate(self._workers)
                if process is not None and process.pid is not None}


class RingProcessBackend(ProcessBackend):
    """The process backend over the shared-memory ring transport.

    Identical failure model and bookkeeping to :class:`ProcessBackend`;
    only the channel differs: each shard gets a
    :class:`~repro.sharding.transport.CoordinatorChannel` (a ring pair
    plus unbounded fallback queues) instead of two bounded pipes.
    Backpressure moves from queue slots to ring bytes — a full ring
    raises ``queue.Full`` exactly like a full bounded queue, so the
    stall/hang/restart ladder above is reused unchanged.  A restart
    creates *fresh* rings (a SIGKILLed worker may have died mid-frame;
    reattaching would mean parsing its debris) and the journal replay
    regenerates everything the old rings held.  A torn or corrupt frame
    on a response ring is crash debris by construction — workers publish
    only whole CRC-framed messages — and fails the shard over like a
    worker death.
    """

    ring_bytes = DEFAULT_RING_BYTES

    def _start_transport(self) -> None:
        self._workers: list = [None] * self.shards
        self._channels: list = [None] * self.shards
        # One response event for all shards: any worker's publish wakes
        # the coordinator's single park (see park_for_responses).
        self._response_wake = self._context.Semaphore(0)

    def _spawn(self, shard: int) -> None:
        old = self._channels[shard]
        if old is not None:
            old.close()  # unlink the dead incarnation's segments
        channel = CoordinatorChannel(self._context, self.ring_bytes,
                                     metrics=self.metrics.shard(shard),
                                     response_wake=self._response_wake)
        process = self._context.Process(
            target=process_worker_main,
            args=(shard, self.spec, channel.in_queue, channel.out_queue),
            kwargs={"transport": "process",
                    "incarnation": self._incarnations[shard],
                    "rings": channel.handles()},
            name=f"sase-shard-{shard}", daemon=True)
        process.start()
        self._channels[shard] = channel
        self._workers[shard] = process

    def _channel_put(self, shard: int, message: tuple,
                     timeout: float | None) -> None:
        self._channels[shard].put(message, timeout)

    def _drain_responses(self) -> list[tuple]:
        responses = []
        corrupt = []
        for shard in range(self.shards):
            channel = self._channels[shard]
            if channel is None or shard in self._lost:
                continue
            try:
                messages = channel.drain(
                    alive=lambda s=shard: self._alive(s))
            except RingTorn:
                corrupt.append(shard)
                continue
            for index, raw in enumerate(messages):
                try:
                    accepted = self._accept(raw)
                except SaseError:
                    # The ring bytes behind these messages are already
                    # consumed; park the rest on the channel so a caller
                    # that catches the error and keeps polling still
                    # sees them (the pipe transport leaves them in the
                    # queue for the same reason).
                    channel.requeue(messages[index + 1:])
                    raise
                if accepted is not None:
                    responses.append(accepted)
        for shard in corrupt:
            if not self._stopping:
                self._fail_worker(shard, "crash")
        return responses

    def _idle_wait(self, waiter: AdaptiveWaiter) -> None:
        # Event park instead of backoff polling: a worker that publishes
        # a response frame (or a fallback marker) sets the shared event,
        # so the drain resumes at semaphore-wakeup latency — and a truly
        # idle coordinator sleeps, costing ~1/_WAIT_PARK_MAX wakeups/s
        # only to keep hang budgets honest.
        self.park_waits += 1
        park_for_responses(
            [channel for shard, channel in enumerate(self._channels)
             if channel is not None and shard not in self._lost],
            _WAIT_PARK_MAX)

    def _shutdown_transport(self) -> None:
        self._join_workers()
        for channel in self._channels:
            if channel is not None:
                channel.close()


def make_backend(backend: str, shards: int, spec: WorkerSpec, metrics,
                 queue_capacity: int, response_timeout: float,
                 supervisor=None, on_shard_lost=None,
                 transport: str = "ring",
                 ring_bytes: int = DEFAULT_RING_BYTES,
                 workers: tuple[str, ...] = (),
                 secret: str | None = None) -> ShardBackend:
    if backend == "remote":
        # Imported lazily: the remote module subclasses this one.
        from repro.sharding.remote import RemoteBackend
        instance = RemoteBackend(shards, spec, metrics, queue_capacity,
                                 response_timeout, workers=workers,
                                 secret=secret)
        instance.supervisor = supervisor
        instance.on_shard_lost = on_shard_lost
        instance.start()
        return instance
    classes = {"inline": InlineBackend, "thread": ThreadBackend,
               "process": ProcessBackend}
    try:
        cls = classes[backend]
    except KeyError:
        raise SaseError(f"unknown shard backend {backend!r}") from None
    if cls is ProcessBackend and transport == "ring":
        cls = RingProcessBackend
    instance = cls(shards, spec, metrics, queue_capacity,
                   response_timeout)
    if cls is RingProcessBackend:
        instance.ring_bytes = ring_bytes
    if not instance.synchronous:
        instance.supervisor = supervisor
        instance.on_shard_lost = on_shard_lost
    instance.start()
    return instance
