"""Pluggable shard executors: inline, thread, and process backends.

All three run the same :class:`~repro.sharding.worker.ShardWorkerCore`;
they differ only in transport and failure model:

* **inline** — cores live in the coordinator and batches execute
  synchronously on submit.  Fully deterministic, zero concurrency; the
  backend differential tests and the default configuration use it.
* **thread** — one daemon thread per shard with bounded ``queue.Queue``
  channels.  Useful for overlap with I/O-bound callables and for
  exercising the asynchronous protocol without processes (the GIL caps
  CPU parallelism).
* **process** — one ``multiprocessing`` worker per shard with bounded
  queues and batched IPC.  The submit path *blocks* when a shard's queue
  is full (backpressure) instead of buffering unboundedly, and every
  batch is journaled: a worker that dies mid-batch is detected, its shard
  restarted, the journal replayed into the fresh worker, and duplicate
  responses suppressed — results are exactly-once even across a kill.
"""

from __future__ import annotations

import queue as queue_module
import threading
import time
from typing import Callable

from repro.errors import SaseError
from repro.sharding.worker import ShardWorkerCore, WorkerSpec, \
    process_worker_main

# How long one blocking put/get waits before re-checking worker liveness.
_STALL_TICK = 0.05


class ShardBackend:
    """Transport-agnostic base: bookkeeping for outstanding work."""

    synchronous = False

    def __init__(self, shards: int, spec: WorkerSpec, metrics,
                 queue_capacity: int, response_timeout: float):
        self.shards = shards
        self.spec = spec
        self.metrics = metrics
        self.queue_capacity = queue_capacity
        self.response_timeout = response_timeout
        self._outstanding: set[tuple] = set()   # ("batch", shard, id) ...

    # -- bookkeeping shared by every transport -------------------------------

    def outstanding(self) -> int:
        return len(self._outstanding)

    def _note_submitted(self, shard: int, batch_id: int) -> None:
        self._outstanding.add(("batch", shard, batch_id))

    def _note_flush_sent(self, shard: int, flush_id: int) -> None:
        self._outstanding.add(("flush", shard, flush_id))

    def _accept(self, response: tuple) -> tuple | None:
        """Mark a raw worker response received; None when duplicate."""
        opcode = response[0]
        if opcode == "error":
            raise SaseError(
                f"shard {response[1]} worker failed:\n{response[2]}")
        key = (opcode, response[1], response[2])
        if key not in self._outstanding:
            return None  # replayed duplicate after a restart
        self._outstanding.discard(key)
        self.metrics.shard(response[1]).results_received += \
            len(response[3])
        return response

    # -- transport interface -------------------------------------------------

    def start(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def submit(self, shard: int, batch_id: int, entries: list) -> None:
        raise NotImplementedError  # pragma: no cover

    def send_flush(self, flush_id: int) -> None:
        raise NotImplementedError  # pragma: no cover

    def poll(self) -> list[tuple]:
        raise NotImplementedError  # pragma: no cover

    def wait(self) -> list[tuple]:
        """Block until at least one response arrives (or raise after
        ``response_timeout`` seconds without progress)."""
        deadline = time.monotonic() + self.response_timeout
        while True:
            responses = self.poll()
            if responses:
                return responses
            if not self._outstanding:
                return []
            if time.monotonic() > deadline:
                raise SaseError(
                    f"sharded runtime made no progress for "
                    f"{self.response_timeout:g}s; "
                    f"{len(self._outstanding)} response(s) outstanding")
            time.sleep(_STALL_TICK / 10)

    def stop(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def worker_pids(self) -> dict[int, int]:
        return {}


class InlineBackend(ShardBackend):
    """Deterministic single-process execution; batches run on submit."""

    synchronous = True

    def start(self) -> None:
        self._cores = [ShardWorkerCore(shard, self.spec)
                       for shard in range(self.shards)]
        self._responses: list[tuple] = []

    def submit(self, shard: int, batch_id: int, entries: list) -> None:
        self._note_submitted(shard, batch_id)
        tagged, delta, spans = self._cores[shard].process_batch(entries)
        self._responses.append(("batch", shard, batch_id, tagged, delta,
                                spans))

    def send_flush(self, flush_id: int) -> None:
        for shard in range(self.shards):
            self._note_flush_sent(shard, flush_id)
            tagged, delta, spans = self._cores[shard].flush()
            self._responses.append(("flush", shard, flush_id, tagged,
                                    delta, spans))

    def poll(self) -> list[tuple]:
        accepted = [self._accept(response)
                    for response in self._responses]
        self._responses.clear()
        return [response for response in accepted if response is not None]

    def stop(self) -> None:
        self._cores = []


class _BoundedChannelBackend(ShardBackend):
    """Shared logic for thread/process backends: bounded per-shard input
    queues with stall-counting blocking puts."""

    def _put_with_backpressure(self, shard: int, message: tuple,
                               alive: Callable[[], bool],
                               on_dead: Callable[[], None]) -> None:
        in_queue = self._in_queues[shard]
        try:
            in_queue.put_nowait(message)
            return
        except queue_module.Full:
            self.metrics.shard(shard).queue_full_stalls += 1
        deadline = time.monotonic() + self.response_timeout
        while True:
            if not alive():
                on_dead()
                return
            try:
                # Re-resolve the queue: a restart swaps in a fresh one.
                self._in_queues[shard].put(message, timeout=_STALL_TICK)
                return
            except queue_module.Full:
                if time.monotonic() > deadline:
                    raise SaseError(
                        f"shard {shard} queue stayed full for "
                        f"{self.response_timeout:g}s (backpressure "
                        f"deadlock?)") from None


class ThreadBackend(_BoundedChannelBackend):
    """One worker thread per shard.  Threads do not crash independently
    of the coordinator, so there is no journal or restart machinery."""

    def start(self) -> None:
        self._in_queues = [queue_module.Queue(maxsize=self.queue_capacity)
                           for _ in range(self.shards)]
        self._out_queue: queue_module.Queue = queue_module.Queue()
        self._threads = []
        for shard in range(self.shards):
            thread = threading.Thread(
                target=process_worker_main,
                args=(shard, self.spec, self._in_queues[shard],
                      self._out_queue),
                name=f"sase-shard-{shard}", daemon=True)
            thread.start()
            self._threads.append(thread)

    def submit(self, shard: int, batch_id: int, entries: list) -> None:
        self._note_submitted(shard, batch_id)
        self._put_with_backpressure(
            shard, ("batch", batch_id, entries),
            alive=self._threads[shard].is_alive,
            on_dead=lambda: (_ for _ in ()).throw(SaseError(
                f"shard {shard} worker thread died unexpectedly")))

    def send_flush(self, flush_id: int) -> None:
        for shard in range(self.shards):
            self._note_flush_sent(shard, flush_id)
            self._in_queues[shard].put(("flush", flush_id))

    def poll(self) -> list[tuple]:
        responses = []
        while True:
            try:
                raw = self._out_queue.get_nowait()
            except queue_module.Empty:
                break
            accepted = self._accept(raw)
            if accepted is not None:
                responses.append(accepted)
        return responses

    def stop(self) -> None:
        for shard in range(self.shards):
            try:
                self._in_queues[shard].put(("stop",), timeout=1.0)
            except queue_module.Full:  # pragma: no cover
                pass
        for thread in self._threads:
            thread.join(timeout=2.0)


class ProcessBackend(_BoundedChannelBackend):
    """One worker process per shard, with journal-replay fault recovery."""

    def __init__(self, shards: int, spec: WorkerSpec, metrics,
                 queue_capacity: int, response_timeout: float):
        super().__init__(shards, spec, metrics, queue_capacity,
                         response_timeout)
        import multiprocessing
        methods = multiprocessing.get_all_start_methods()
        self._context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        self._journal: list[list[tuple[int, list]]] = []
        self._pending_flush: dict[int, int] = {}
        self._stopping = False

    def start(self) -> None:
        self._in_queues = []
        self._out_queues = []
        self._processes = []
        self._journal = [[] for _ in range(self.shards)]
        for shard in range(self.shards):
            self._spawn(shard, fresh=True)

    def _spawn(self, shard: int, fresh: bool) -> None:
        in_queue = self._context.Queue(maxsize=self.queue_capacity)
        out_queue = self._context.Queue()
        process = self._context.Process(
            target=process_worker_main,
            args=(shard, self.spec, in_queue, out_queue),
            name=f"sase-shard-{shard}", daemon=True)
        process.start()
        if fresh:
            self._in_queues.append(in_queue)
            self._out_queues.append(out_queue)
            self._processes.append(process)
        else:
            self._in_queues[shard] = in_queue
            self._out_queues[shard] = out_queue
            self._processes[shard] = process

    # -- fault handling ------------------------------------------------------

    def _alive(self, shard: int) -> bool:
        return self._processes[shard].is_alive()

    def _restart(self, shard: int) -> None:
        """A worker died: replace it, replay its journal, resend any
        pending flush.  Replayed responses the coordinator already
        consumed are suppressed by :meth:`_accept`'s outstanding check."""
        if self._stopping:  # pragma: no cover - shutdown race
            return
        dead = self._processes[shard]
        try:
            dead.terminate()
            dead.join(timeout=1.0)
        except Exception:  # pragma: no cover
            pass
        shard_metrics = self.metrics.shard(shard)
        shard_metrics.worker_restarts += 1
        shard_metrics.batches_replayed += len(self._journal[shard])
        self._spawn(shard, fresh=False)
        for batch_id, entries in self._journal[shard]:
            self._put_with_backpressure(
                shard, ("batch", batch_id, entries),
                alive=lambda: self._alive(shard),
                on_dead=lambda: self._restart(shard))
        if shard in self._pending_flush:
            self._in_queues[shard].put(("flush",
                                        self._pending_flush[shard]))

    # -- transport -----------------------------------------------------------

    def submit(self, shard: int, batch_id: int, entries: list) -> None:
        self._note_submitted(shard, batch_id)
        self._journal[shard].append((batch_id, entries))
        if not self._alive(shard):
            self._restart(shard)  # replay delivers this batch too
            return
        self._put_with_backpressure(
            shard, ("batch", batch_id, entries),
            alive=lambda: self._alive(shard),
            on_dead=lambda: self._restart(shard))

    def send_flush(self, flush_id: int) -> None:
        for shard in range(self.shards):
            self._note_flush_sent(shard, flush_id)
            self._pending_flush[shard] = flush_id
            if not self._alive(shard):
                self._restart(shard)  # restart also resends the flush
                continue
            self._put_with_backpressure(
                shard, ("flush", flush_id),
                alive=lambda s=shard: self._alive(s),
                on_dead=lambda s=shard: self._restart(s))

    def poll(self) -> list[tuple]:
        responses = []
        for shard in range(self.shards):
            while True:
                try:
                    raw = self._out_queues[shard].get_nowait()
                except queue_module.Empty:
                    break
                except Exception:
                    # A SIGKILL mid-write can corrupt the pipe; the
                    # journal replay regenerates whatever was lost.
                    break
                accepted = self._accept(raw)
                if accepted is not None:
                    responses.append(accepted)
            if not responses and self._has_outstanding(shard) and \
                    not self._alive(shard):
                self._restart(shard)
        return responses

    def _has_outstanding(self, shard: int) -> bool:
        return any(key[1] == shard for key in self._outstanding)

    def stop(self) -> None:
        self._stopping = True
        for shard in range(self.shards):
            try:
                self._in_queues[shard].put(("stop",), timeout=1.0)
            except Exception:  # pragma: no cover
                pass
        for process in self._processes:
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover
                process.terminate()
                process.join(timeout=1.0)
        for a_queue in (*self._in_queues, *self._out_queues):
            a_queue.cancel_join_thread()
            a_queue.close()

    def worker_pids(self) -> dict[int, int]:
        return {shard: process.pid
                for shard, process in enumerate(self._processes)
                if process.pid is not None}


def make_backend(backend: str, shards: int, spec: WorkerSpec, metrics,
                 queue_capacity: int,
                 response_timeout: float) -> ShardBackend:
    classes = {"inline": InlineBackend, "thread": ThreadBackend,
               "process": ProcessBackend}
    try:
        cls = classes[backend]
    except KeyError:
        raise SaseError(f"unknown shard backend {backend!r}") from None
    instance = cls(shards, spec, metrics, queue_capacity,
                   response_timeout)
    instance.start()
    return instance
