"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo``      — run the paper's retail demonstration scenario and render
                  the Figure 3 UI panels;
* ``warehouse`` — run the supply-chain history through the archival rules
                  and print track-and-trace answers;
* ``explain``   — compile a query and print its plan;
* ``run``       — execute a query over events from a JSON-lines file;
* ``bench``     — a quick plan comparison on a synthetic stream;
* ``serve``     — run the multi-tenant query service over TCP;
* ``client``    — register/withdraw/subscribe/feed against a server.

Event files are JSON lines: ``{"type": "A", "timestamp": 1.0,
"attributes": {"id": 7}}``.  Schema files map type names to attribute
types: ``{"A": {"id": "int", "name": "string"}}``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Iterable, Sequence, TextIO

from repro.core.engine import Engine
from repro.core.plan import PlanConfig
from repro.errors import SaseError
from repro.events.event import Event
from repro.events.model import AttributeType, SchemaRegistry
from repro.rfid import NoiseModel
from repro.schemas import retail_registry
from repro.obs import MetricsExporter
from repro.persist import FsyncPolicy, PersistenceConfig
from repro.sharding import BACKENDS, TRANSPORTS, ShardingConfig
from repro.system import SaseSystem
from repro.ui import SaseConsole, format_trace_lines
from repro.workloads import (
    CONTAINMENT_RULE,
    LOCATION_UPDATE_RULE,
    MISPLACED_INVENTORY_QUERY,
    RetailConfig,
    RetailScenario,
    SHOPLIFTING_QUERY,
    UNPACK_RULE,
    WarehouseConfig,
    WarehouseHistory,
)

_NOISE_PRESETS = {
    "none": NoiseModel.perfect(),
    "mild": NoiseModel(miss_rate=0.05, duplicate_rate=0.05,
                       truncate_rate=0.01, ghost_rate=0.005),
    "harsh": NoiseModel.harsh(),
}

_TYPE_WORDS = {
    "int": AttributeType.INT,
    "float": AttributeType.FLOAT,
    "string": AttributeType.STRING,
    "bool": AttributeType.BOOL,
}


def main(argv: Sequence[str] | None = None,
         out: TextIO | None = None) -> int:
    out = out or sys.stdout
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        args.handler(args, out)
    except SaseError as exc:
        # Usage-class failures (malformed query, bad --chaos spec,
        # mismatched manifest): one line, exit 2 — the argparse
        # convention — never a traceback.
        print(f"error: {exc}", file=out)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=out)
        return 1
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SASE: complex event processing over streams "
                    "(CIDR 2007 reproduction)")
    commands = parser.add_subparsers(dest="command", required=True)

    demo = commands.add_parser(
        "demo", help="run the retail-store demonstration")
    demo.add_argument("--seed", type=int, default=2007)
    demo.add_argument("--noise", choices=sorted(_NOISE_PRESETS),
                      default="mild")
    demo.add_argument("--products", type=int, default=30)
    demo.add_argument("--shoppers", type=int, default=6)
    demo.add_argument("--shoplifters", type=int, default=2)
    demo.add_argument("--misplacements", type=int, default=2)
    demo.add_argument("--batch", type=int, default=1, metavar="N",
                      help="feed cleaned events to the processor in "
                           "batches of N (1 = per-event path; results "
                           "are identical either way)")
    demo.add_argument("--shards", type=int, default=1,
                      help="worker shards for the parallel runtime "
                           "(default: 1, classic single-process)")
    demo.add_argument("--shard-backend", choices=BACKENDS,
                      default="inline",
                      help="shard executor: inline (deterministic, "
                           "in-process), thread, process, or remote "
                           "(TCP worker daemons; see --shard-workers)")
    demo.add_argument("--shard-transport", choices=TRANSPORTS,
                      default="ring",
                      help="process-backend IPC: ring (shared-memory "
                           "ring buffers, default) or pipe (classic "
                           "pickle over multiprocessing queues); "
                           "ignored by other backends")
    demo.add_argument("--shard-workers", metavar="HOST:PORT,...",
                      help="remote backend only: one worker endpoint "
                           "per shard (start each with 'repro worker'; "
                           "localhost endpoints nothing listens on are "
                           "spawned and supervised automatically)")
    demo.add_argument("--shard-secret", metavar="SECRET",
                      help="remote backend only: shared secret keying "
                           "the worker handshake — a literal, env:NAME, "
                           "or file:PATH (give every 'repro worker' the "
                           "same one)")
    demo.add_argument("--data-dir", metavar="DIR",
                      help="durable persistence: write-ahead log, "
                           "checkpoints, and the match log live here; "
                           "re-running with the same DIR recovers and "
                           "resumes after a crash")
    demo.add_argument("--fsync", default="every_n:64", metavar="POLICY",
                      help="WAL fsync cadence: always, never, or "
                           "every_n:N (default: every_n:64)")
    demo.add_argument("--checkpoint-every", type=int, default=256,
                      metavar="N",
                      help="events between checkpoints; 0 keeps only "
                           "the final one (default: 256)")
    # Fault injection for the differential crash tests: SIGKILL the
    # whole process group right after the Nth WAL append.
    demo.add_argument("--crash-after", type=int, help=argparse.SUPPRESS)
    demo.add_argument("--chaos", metavar="SPEC",
                      help="deterministic fault injection, e.g. "
                           "'ingest.corrupt=0.02,worker.crash@40' "
                           "(see docs/resilience.md for the grammar)")
    demo.add_argument("--chaos-seed", type=int, default=0,
                      help="seed for the chaos schedule (default: 0)")
    demo.add_argument("--dead-letter", metavar="PATH",
                      help="persist quarantined readings to a JSON-lines "
                           "dead-letter file (inspect/replay with "
                           "'repro deadletter')")
    demo.add_argument("--shed", default="block", metavar="POLICY",
                      help="overload policy for full shard queues: "
                           "block (default, lossless), drop-newest, "
                           "drop-oldest, or sample:P")
    demo.add_argument("--trace", type=int, metavar="TAG",
                      help="print the movement history of one tag")
    demo.add_argument("--metrics-out", metavar="PATH",
                      help="write a metrics snapshot after the run "
                           "(.prom/.txt: Prometheus text, else JSON)")
    demo.add_argument("--trace-out", metavar="PATH",
                      help="record dataflow traces and dump them as "
                           "JSON lines")
    demo.set_defaults(handler=_cmd_demo)

    trace = commands.add_parser(
        "trace", help="run the retail demo with dataflow tracing and "
                      "render one query's intermediate-stream view")
    trace.add_argument("--query", default="shoplifting",
                       help="query to trace (default: shoplifting)")
    trace.add_argument("--seed", type=int, default=2007)
    trace.add_argument("--products", type=int, default=12)
    trace.add_argument("--shoppers", type=int, default=3)
    trace.add_argument("--shoplifters", type=int, default=1)
    trace.add_argument("--shards", type=int, default=1)
    trace.add_argument("--shard-backend", choices=BACKENDS,
                       default="inline")
    trace.add_argument("--shard-transport", choices=TRANSPORTS,
                       default="ring")
    trace.add_argument("--shard-workers", metavar="HOST:PORT,...")
    trace.add_argument("--shard-secret", metavar="SECRET")
    trace.add_argument("--limit", type=int, default=12,
                       help="show at most N traces (default: 12)")
    trace.add_argument("--jsonl", metavar="PATH",
                       help="also dump the selected spans as JSON lines")
    trace.add_argument("--slow-feed-ms", type=float, default=0.0,
                       help="log feeds slower than this many "
                            "milliseconds (0 = off)")
    trace.set_defaults(handler=_cmd_trace)

    recover = commands.add_parser(
        "recover", help="recover a demo --data-dir: restore the latest "
                        "checkpoint, replay the WAL, and report the "
                        "regenerated state without feeding new events")
    recover.add_argument("data_dir", metavar="DATA_DIR")
    recover.add_argument("--fsync", default="every_n:64",
                         metavar="POLICY",
                         help="fsync cadence for the recovered logs")
    recover.add_argument("--shard-secret", metavar="SECRET",
                         help="shared worker secret, needed when the "
                              "recovered manifest uses the remote "
                              "backend (secrets are never written to "
                              "the manifest)")
    recover.set_defaults(handler=_cmd_recover)

    warehouse = commands.add_parser(
        "warehouse", help="supply-chain rules + track-and-trace")
    warehouse.add_argument("--seed", type=int, default=17)
    warehouse.add_argument("--boxes", type=int, default=3)
    warehouse.add_argument("--items-per-box", type=int, default=4)
    warehouse.set_defaults(handler=_cmd_warehouse)

    explain = commands.add_parser(
        "explain", help="print the plan chosen for a query")
    explain.add_argument("query", help="query text, or @file to read one")
    explain.add_argument("--schemas", help="schema JSON file "
                                           "(default: retail schemas)")
    explain.add_argument("--naive", action="store_true",
                         help="plan with all optimizations off")
    explain.set_defaults(handler=_cmd_explain)

    run = commands.add_parser(
        "run", help="run a query over a JSON-lines or CSV event file")
    run.add_argument("query", help="query text, or @file to read one")
    run.add_argument("--events", required=True,
                     help="event file: JSON lines, or CSV when the name "
                          "ends in .csv ('-' for JSON-lines stdin)")
    run.add_argument("--schemas", help="schema JSON file (default: "
                                       "inferred from the events)")
    run.add_argument("--naive", action="store_true")
    run.add_argument("--limit", type=int, default=0,
                     help="print at most N results (0 = all)")
    run.set_defaults(handler=_cmd_run)

    bench = commands.add_parser(
        "bench", help="quick plan comparison on a synthetic stream")
    bench.add_argument("--events", type=int, default=3000)
    bench.add_argument("--window", type=float, default=30.0)
    bench.set_defaults(handler=_cmd_bench)

    serve = commands.add_parser(
        "serve", help="run the multi-tenant query service (JSON-lines "
                      "TCP; see docs/service.md)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="listen port (default: 0 = ephemeral; the "
                            "bound port is printed on startup)")
    serve.add_argument("--schemas", help="schema JSON file "
                                         "(default: retail schemas)")
    serve.add_argument("--manifest", metavar="PATH",
                       help="durable query-set manifest: every "
                            "registration/withdrawal rewrites it "
                            "atomically, and restarting with the same "
                            "PATH restores all tenants and queries")
    serve.add_argument("--max-tenants", type=int, default=1024)
    serve.add_argument("--max-total-queries", type=int, default=4096)
    serve.add_argument("--queue-limit", type=int, default=64,
                       help="admission-queue depth once the service is "
                            "at capacity (default: 64)")
    serve.add_argument("--tenant-max-queries", type=int, default=8,
                       help="default per-tenant query quota (default: 8)")
    serve.add_argument("--tenant-max-events-per-second", type=float,
                       default=0.0,
                       help="default per-tenant ingest rate limit "
                            "(default: 0 = unlimited)")
    serve.add_argument("--tenant-max-pending-results", type=int,
                       default=1024,
                       help="default per-tenant result backlog before "
                            "shedding (default: 1024)")
    serve.add_argument("--no-shared-plans", action="store_true",
                       help="evaluate every tenant query independently "
                            "(disables cross-tenant plan sharing)")
    serve.add_argument("--metrics-out", metavar="PATH",
                       help="write a metrics snapshot (including "
                            "per-tenant gauges) on shutdown")
    serve.set_defaults(handler=_cmd_serve)

    client = commands.add_parser(
        "client", help="talk to a running query service")
    client.add_argument(
        "action", choices=("ping", "register", "withdraw", "subscribe",
                           "feed", "drain", "flush", "stats",
                           "shutdown"),
        help="register TENANT NAME QUERY | withdraw TENANT NAME | "
             "subscribe TENANT --limit N | feed TENANT --events FILE | "
             "drain TENANT | ping | flush | stats | shutdown")
    client.add_argument("tenant", nargs="?")
    client.add_argument("name", nargs="?")
    client.add_argument("query", nargs="?",
                        help="query text, or @file (register)")
    client.add_argument("--host", default="127.0.0.1")
    client.add_argument("--port", type=int, required=True)
    client.add_argument("--events", metavar="PATH",
                        help="feed: JSON-lines event file ('-' = stdin)")
    client.add_argument("--limit", type=int, default=0,
                        help="subscribe: stop after N results; "
                             "drain: return at most N")
    client.set_defaults(handler=_cmd_client)

    deadletter = commands.add_parser(
        "deadletter", help="inspect or replay a dead-letter file "
                           "written by 'demo --dead-letter'")
    deadletter.add_argument("action", choices=("list", "replay"))
    deadletter.add_argument("path", metavar="PATH")
    deadletter.add_argument("--limit", type=int, default=20,
                            help="list: show at most N records "
                                 "(default: 20)")
    deadletter.add_argument("--rewrite", action="store_true",
                            help="replay: rewrite PATH keeping only the "
                                 "records that still fail validation")
    deadletter.set_defaults(handler=_cmd_deadletter)

    worker = commands.add_parser(
        "worker", help="serve one remote shard worker: listen for a "
                       "coordinator started with --shard-backend "
                       "remote and run its shard over TCP")
    worker.add_argument("--host", default="127.0.0.1",
                        help="interface to listen on "
                             "(default: 127.0.0.1)")
    worker.add_argument("--port", type=int, default=0,
                        help="port to listen on (default: 0 = pick an "
                             "ephemeral port and print it)")
    worker.add_argument("--once", action="store_true",
                        help="exit after the first coordinator "
                             "session instead of re-accepting")
    worker.add_argument("--shard-secret", metavar="SECRET",
                        help="shared secret the coordinator must prove "
                             "(literal, env:NAME, or file:PATH); "
                             "required")
    worker.add_argument("--chaos", metavar="SPEC",
                        help="arm net.* fault sites on this worker's "
                             "side of each session (for network chaos "
                             "testing)")
    worker.add_argument("--chaos-seed", type=int, default=0,
                        help="seed for the worker-side chaos schedule")
    worker.set_defaults(handler=_cmd_worker)

    return parser


# -- commands ----------------------------------------------------------------

_DEMO_PARAM_KEYS = ("seed", "noise", "products", "shoppers",
                    "shoplifters", "misplacements", "shards",
                    "shard_backend", "shard_transport", "shard_workers",
                    "chaos", "chaos_seed", "shed")
# Keys added after a data directory format already existed: manifests
# written by older runs lack them, so comparison fills in the defaults.
_DEMO_PARAM_DEFAULTS = {"chaos": None, "chaos_seed": 0, "shed": "block",
                        "shard_transport": "ring",
                        "shard_workers": None}
_MANIFEST_NAME = "manifest.json"


def _demo_params(args: argparse.Namespace) -> dict[str, Any]:
    return {key: getattr(args, key, _DEMO_PARAM_DEFAULTS.get(key))
            for key in _DEMO_PARAM_KEYS}


def _validate_shard_params(params: dict[str, Any],
                           secret: str | None = None) -> None:
    """Usage-error validation of the shard arguments, eagerly — before
    any manifest is written, worker spawned, or socket connected — so
    a typo exits 2 without side effects.  Normalizes ``shards`` to the
    endpoint count when the remote backend is given only
    ``--shard-workers``."""
    backend = params.get("shard_backend", "inline")
    transport = params.get("shard_transport", "ring")
    workers = params.get("shard_workers")
    if backend not in BACKENDS:
        raise SaseError(f"unknown shard backend {backend!r}; "
                        f"choose one of {', '.join(BACKENDS)}")
    if transport not in TRANSPORTS:
        raise SaseError(f"unknown shard transport {transport!r}; "
                        f"choose one of {', '.join(TRANSPORTS)}")
    if backend == "remote":
        if not workers:
            raise SaseError("--shard-backend remote needs "
                            "--shard-workers HOST:PORT[,HOST:PORT...]")
        from repro.sharding.remote import parse_endpoints, \
            resolve_secret
        endpoints = parse_endpoints(workers)
        if params.get("shards", 1) == 1:
            params["shards"] = len(endpoints)
        elif params["shards"] != len(endpoints):
            raise SaseError(
                f"--shards {params['shards']} does not match the "
                f"{len(endpoints)} endpoint(s) in --shard-workers")
        if secret is None:
            raise SaseError(
                "--shard-backend remote needs --shard-secret "
                "(a literal, env:NAME, or file:PATH shared with "
                "every worker)")
        resolve_secret(secret)  # unset env var / missing file: exit 2
    elif workers:
        raise SaseError("--shard-workers only applies to "
                        "--shard-backend remote")
    elif secret is not None:
        raise SaseError("--shard-secret only applies to "
                        "--shard-backend remote")
    chaos = params.get("chaos")
    if chaos:
        from repro.resilience.chaos import ChaosConfig
        config = ChaosConfig.parse(chaos, params.get("chaos_seed", 0))
        if config.armed("net.") and backend != "remote":
            raise SaseError("net.* chaos sites only apply to "
                            "--shard-backend remote")


def _build_demo_system(params: dict[str, Any],
                       persistence: PersistenceConfig | None = None,
                       dead_letter_path: str | None = None,
                       ingest_batch: int = 1,
                       shard_secret: str | None = None) \
        -> tuple[RetailScenario, SaseSystem]:
    """The retail demo stack, reconstructible from a manifest: scenario,
    system, and the standard query/rule set."""
    scenario = RetailScenario.generate(RetailConfig(
        n_products=params["products"], n_shoppers=params["shoppers"],
        n_shoplifters=params["shoplifters"],
        n_misplacements=params["misplacements"], seed=params["seed"]))
    sharding = None
    if params["shards"] != 1 or params["shard_backend"] != "inline":
        workers = params.get("shard_workers")
        if workers:
            from repro.sharding.remote import parse_endpoints
            workers = parse_endpoints(workers)
        sharding = ShardingConfig(
            shards=params["shards"], backend=params["shard_backend"],
            transport=params.get("shard_transport", "ring"),
            workers=workers or (),
            secret=(shard_secret
                    if params["shard_backend"] == "remote" else None))
    resilience = None
    if params.get("chaos") or dead_letter_path \
            or params.get("shed", "block") != "block":
        from repro.resilience import ResilienceConfig
        resilience = ResilienceConfig(
            chaos=params.get("chaos"),
            chaos_seed=params.get("chaos_seed", 0),
            dead_letter_path=dead_letter_path,
            shedding=params.get("shed", "block"))
    system = SaseSystem(scenario.layout, scenario.ons,
                        sharding=sharding, persistence=persistence,
                        resilience=resilience, ingest_batch=ingest_batch)
    system.register_monitoring_query("shoplifting", SHOPLIFTING_QUERY)
    system.register_monitoring_query("misplaced",
                                     MISPLACED_INVENTORY_QUERY)
    for event_type in ("SHELF_READING", "COUNTER_READING",
                       "EXIT_READING"):
        system.register_archiving_rule(f"loc_{event_type}",
                                       LOCATION_UPDATE_RULE(event_type))
    return scenario, system


def _check_manifest(data_dir: str, params: dict[str, Any]) -> None:
    """Pin the demo arguments to the data directory: recovery replays
    the WAL against a re-generated source, so resuming with different
    arguments would silently diverge.  First run writes the manifest;
    later runs must match it."""
    os.makedirs(data_dir, exist_ok=True)
    path = os.path.join(data_dir, _MANIFEST_NAME)
    if os.path.exists(path):
        with open(path, encoding="utf-8") as handle:
            recorded = json.load(handle)
        recorded = {**_DEMO_PARAM_DEFAULTS, **recorded}
        if recorded != params:
            changed = sorted(key for key in set(recorded) | set(params)
                             if recorded.get(key) != params.get(key))
            raise SaseError(
                f"{data_dir} was created by a demo run with different "
                f"arguments (changed: {', '.join(changed)}); use the "
                f"original arguments or a fresh --data-dir")
        return
    temp_path = f"{path}.tmp"
    with open(temp_path, "w", encoding="utf-8") as handle:
        json.dump(params, handle, indent=2, sort_keys=True)
    os.replace(temp_path, path)


def _read_manifest(data_dir: str) -> dict[str, Any]:
    path = os.path.join(data_dir, _MANIFEST_NAME)
    if not os.path.exists(path):
        raise SaseError(f"{data_dir}: no {_MANIFEST_NAME}; not a demo "
                        f"data directory")
    with open(path, encoding="utf-8") as handle:
        return {**_DEMO_PARAM_DEFAULTS, **json.load(handle)}


def _print_persistence_summary(system: SaseSystem, report,
                               out: TextIO) -> None:
    gauges = system.persistence.gauges()
    print("\npersistence:", file=out)
    if report is not None and (report.replayed_events
                               or report.scratch_events
                               or report.durable_matches):
        restored = "none" if report.checkpoint_lsn is None \
            else f"lsn {report.checkpoint_lsn}"
        print(f"  recovered: checkpoint {restored}, "
              f"{report.scratch_events + report.replayed_events} "
              f"event(s) replayed, {len(report.suppressed_matches)} "
              f"durable match(es) suppressed "
              f"({report.elapsed_seconds * 1e3:.0f} ms)", file=out)
    print(f"  wal: {gauges['wal_records']} record(s) in "
          f"{gauges['wal_segments']} segment(s), "
          f"{gauges['wal_bytes']} bytes, {gauges['wal_fsyncs']} "
          f"fsync(s)", file=out)
    print(f"  checkpoints: {gauges['checkpoints_written']} written; "
          f"out log: {gauges['out_records']} durable match(es)",
          file=out)


def _print_resilience_summary(system: SaseSystem, out: TextIO) -> None:
    print("\nresilience:", file=out)
    injector = system.injector
    if injector is not None:
        injected = {site: count for site, count
                    in sorted(injector.injected.items()) if count}
        described = ", ".join(f"{site} x{count}" for site, count
                              in injected.items()) or "none fired"
        print(f"  chaos: {described}", file=out)
    if system.dead_letters is not None:
        where = system.dead_letters.path or "in memory"
        print(f"  dead letters: {len(system.dead_letters)} record(s) "
              f"({where})", file=out)
    degraded = getattr(system.processor, "degraded", False)
    print(f"  degraded: {'yes — results may be incomplete' if degraded else 'no'}",
          file=out)


def _cmd_demo(args: argparse.Namespace, out: TextIO) -> None:
    params = _demo_params(args)
    _validate_shard_params(params, secret=args.shard_secret)
    persistence = None
    if args.data_dir:
        _check_manifest(args.data_dir, params)
        persistence = PersistenceConfig(
            data_dir=args.data_dir,
            fsync=FsyncPolicy.parse(args.fsync),
            checkpoint_every=args.checkpoint_every,
            crash_after=args.crash_after)
    elif args.crash_after is not None:
        raise SaseError("--crash-after requires --data-dir")
    if args.batch < 1:
        raise SaseError("--batch must be >= 1")
    # --batch is deliberately not pinned in the data-dir manifest:
    # batching is result-identical, so recovery may replay with a
    # different batch size.
    scenario, system = _build_demo_system(
        params, persistence, dead_letter_path=args.dead_letter,
        ingest_batch=args.batch, shard_secret=args.shard_secret)
    if args.trace_out:
        system.enable_tracing()
    report = system.recover() if persistence is not None else None
    results = list(report.recovered_matches) if report is not None \
        else []
    results += system.run_simulation(
        scenario.ticks(_NOISE_PRESETS[args.noise]))

    detected = {r["x_TagId"] for name, r in results
                if name == "shoplifting"}
    misplaced = {r["x_TagId"] for name, r in results
                 if name == "misplaced"}
    print(f"shoplifted: truth={sorted(scenario.truth.shoplifted_tags())} "
          f"detected={sorted(detected)}", file=out)
    print(f"misplaced:  truth={sorted(scenario.truth.misplaced_tags())} "
          f"detected={sorted(misplaced)}", file=out)
    print(SaseConsole(system, max_lines=6).render(), file=out)
    if system.processor.sharding is not None:
        transport = (f", {args.shard_transport} transport"
                     if args.shard_backend == "process" else "")
        if args.shard_backend == "remote":
            transport = f", workers {args.shard_workers}"
        print(f"\nsharded runtime ({params['shards']} shard(s), "
              f"{args.shard_backend} backend{transport}):", file=out)
        plan = system.processor.shard_plan
        if plan is not None:
            for line in plan.describe().splitlines():
                print(f"  {line}", file=out)
        for line in system.processor.metrics.report_lines():
            print(f"  {line}", file=out)
    if args.trace is not None:
        print(f"\ntrace for tag {args.trace}:", file=out)
        for entry in system.event_db.movement_history(args.trace):
            print(f"  area {entry['area_id']} ({entry['description']}) "
                  f"[{entry['time_in']:g} .. "
                  f"{entry['time_out'] if entry['time_out'] is not None else 'now'}]",
                  file=out)
    if system.persistence is not None:
        _print_persistence_summary(system, report, out)
    if system.resilience is not None:
        _print_resilience_summary(system, out)
    if args.metrics_out:
        exporter = MetricsExporter(system.processor, args.metrics_out,
                                   persistence=system.persistence)
        exporter.flush()
        print(f"\nmetrics snapshot ({exporter.fmt}) written to "
              f"{args.metrics_out}", file=out)
    if args.trace_out:
        count = system.processor.tracer.dump_jsonl(args.trace_out)
        print(f"{count} trace span(s) written to {args.trace_out}",
              file=out)
    system.close()


def _cmd_recover(args: argparse.Namespace, out: TextIO) -> None:
    params = _read_manifest(args.data_dir)
    persistence = PersistenceConfig(data_dir=args.data_dir,
                                    fsync=FsyncPolicy.parse(args.fsync))
    _, system = _build_demo_system(params, persistence,
                                   shard_secret=args.shard_secret)
    report = system.recover()
    restored = "no checkpoint" if report.checkpoint_lsn is None \
        else f"checkpoint at lsn {report.checkpoint_lsn}"
    print(f"recovered {args.data_dir}: {restored}, "
          f"{report.scratch_events + report.replayed_events} WAL "
          f"event(s) replayed in {report.elapsed_seconds * 1e3:.0f} ms",
          file=out)
    print(f"durable matches: {report.durable_matches}; regenerated "
          f"this pass: {len(report.recovered_matches)}", file=out)
    detected = {r["x_TagId"] for name, r in report.recovered_matches
                if name == "shoplifting"}
    misplaced = {r["x_TagId"] for name, r in report.recovered_matches
                 if name == "misplaced"}
    print(f"shoplifting detections so far: {sorted(detected)}",
          file=out)
    print(f"misplaced detections so far:   {sorted(misplaced)}",
          file=out)
    print("event database:", file=out)
    for name in system.event_db.db.table_names():
        rows = sum(1 for _ in system.event_db.db.table(name).rows())
        print(f"  {name}: {rows} row(s)", file=out)
    # Seal the replayed state into a fresh checkpoint so the next
    # recovery (or demo resume) starts from here instead of re-replaying.
    system.persistence.checkpoint()
    system.persistence.close()


def _cmd_trace(args: argparse.Namespace, out: TextIO) -> None:
    shard_params = {"shards": args.shards,
                    "shard_backend": args.shard_backend,
                    "shard_transport": args.shard_transport,
                    "shard_workers": args.shard_workers}
    _validate_shard_params(shard_params, secret=args.shard_secret)
    scenario = RetailScenario.generate(RetailConfig(
        n_products=args.products, n_shoppers=args.shoppers,
        n_shoplifters=args.shoplifters, n_misplacements=1,
        seed=args.seed))
    sharding = None
    if shard_params["shards"] != 1 or args.shard_backend != "inline":
        workers = ()
        if args.shard_workers:
            from repro.sharding.remote import parse_endpoints
            workers = parse_endpoints(args.shard_workers)
        sharding = ShardingConfig(shards=shard_params["shards"],
                                  backend=args.shard_backend,
                                  transport=args.shard_transport,
                                  workers=workers,
                                  secret=(args.shard_secret
                                          if args.shard_backend
                                          == "remote" else None))
    system = SaseSystem(scenario.layout, scenario.ons, sharding=sharding)
    # A full retail run emits far more spans than the default ring; keep
    # enough history that early RETURN traces survive to the report.
    tracer = system.enable_tracing(capacity=1 << 17)
    if args.slow_feed_ms > 0:
        system.processor.enable_slow_feed_log(args.slow_feed_ms / 1e3)
    system.register_monitoring_query("shoplifting", SHOPLIFTING_QUERY)
    system.register_monitoring_query("misplaced",
                                     MISPLACED_INVENTORY_QUERY)
    for event_type in ("SHELF_READING", "COUNTER_READING",
                       "EXIT_READING"):
        system.register_archiving_rule(f"loc_{event_type}",
                                       LOCATION_UPDATE_RULE(event_type))
    names = [registered.name
             for registered in system.processor.queries()]
    if args.query not in names:
        raise SaseError(f"unknown query {args.query!r}; "
                        f"registered: {', '.join(names)}")
    # Profiling rides along unless the sharded runtime is active (worker
    # shards build their own runtimes from the spec).
    profiles = {} if sharding is not None \
        else system.processor.enable_profiling()
    system.run_simulation(scenario.ticks(NoiseModel.perfect()))

    lines = format_trace_lines(tracer, args.query, limit=args.limit,
                               hits_only=True)
    kind = "matching"
    if not lines:  # no hits recorded — fall back to the raw tail
        lines = format_trace_lines(tracer, args.query, limit=args.limit)
        kind = "recorded"
    print(f"dataflow trace for {args.query!r} "
          f"(last {args.limit} {kind} traces):", file=out)
    if not lines:
        lines = ["(no trace touched this query)"]
    for line in lines:
        print(f"  {line}", file=out)
    profile = profiles.get(args.query)
    if profile is not None:
        print(f"\nscan profile for {args.query!r}:", file=out)
        for line in profile.report_lines():
            print(f"  {line}", file=out)
    slow = system.processor.slow_feed_log
    if slow is not None:
        print(f"\nslow feeds (>= {args.slow_feed_ms:g} ms): "
              f"{slow.total_slow}", file=out)
        for line in slow.report_lines()[-5:]:
            print(f"  {line}", file=out)
    print("", file=out)
    for line in system.processor.metrics.report_lines():
        print(f"  {line}", file=out)
    if args.jsonl:
        count = tracer.dump_jsonl(args.jsonl, query=args.query)
        print(f"\n{count} span(s) written to {args.jsonl}", file=out)


def _cmd_warehouse(args: argparse.Namespace, out: TextIO) -> None:
    history = WarehouseHistory.generate(WarehouseConfig(
        n_boxes=args.boxes, items_per_box=args.items_per_box,
        seed=args.seed))
    system = SaseSystem(history.layout, history.ons)
    system.register_archiving_rule("containment", CONTAINMENT_RULE)
    system.register_archiving_rule("unpack", UNPACK_RULE)
    for event_type in ("LOADING_READING", "UNLOADING_READING",
                       "BACKROOM_READING", "SHELF_READING"):
        system.register_archiving_rule(f"loc_{event_type}",
                                       LOCATION_UPDATE_RULE(event_type))
    for event in history.events():
        system.processor.feed(event)
    system.processor.flush()
    for tag in history.item_tags:
        location = system.event_db.current_location(tag)
        assert location is not None
        moves = len(system.event_db.movement_history(tag))
        print(f"item {tag}: now at area {location['area_id']} "
              f"({location['description']}), {moves} recorded moves",
              file=out)


def _cmd_explain(args: argparse.Namespace, out: TextIO) -> None:
    registry = _load_schemas(args.schemas) if args.schemas \
        else retail_registry()
    engine = Engine(registry)
    config = PlanConfig.naive() if args.naive else None
    compiled = engine.compile(_read_query(args.query), config)
    print(compiled.explain(), file=out)


def _cmd_run(args: argparse.Namespace, out: TextIO) -> None:
    records = list(_read_event_records(args.events))
    registry = _load_schemas(args.schemas) if args.schemas \
        else _infer_registry(records)
    events = []
    skipped = 0
    for record in records:
        try:
            events.append(_to_event(record, registry))
        except SaseError:
            skipped += 1  # e.g. a CSV row with an empty attribute cell
    events.sort(key=lambda event: event.timestamp)
    if skipped:
        print(f"-- skipped {skipped} event(s) not matching their "
              f"schema", file=out)
    engine = Engine(registry)
    config = PlanConfig.naive() if args.naive else None
    printed = 0
    total = 0
    for composite in engine.run(_read_query(args.query), events, config):
        total += 1
        if not args.limit or printed < args.limit:
            printed += 1
            attrs = ", ".join(f"{key}={value}" for key, value
                              in composite.attributes.items())
            print(f"[{composite.start:g}, {composite.end:g}] {attrs}",
                  file=out)
    print(f"-- {total} result(s) over {len(events)} event(s)", file=out)


def _cmd_worker(args: argparse.Namespace, out: TextIO) -> None:
    if not 0 <= args.port <= 65535:
        raise SaseError(f"--port {args.port} is out of range (0-65535)")
    from repro.sharding.remote import resolve_secret, run_worker
    secret = resolve_secret(args.shard_secret)  # eager: exit 2
    if args.chaos:
        from repro.resilience.chaos import ChaosConfig
        ChaosConfig.parse(args.chaos, args.chaos_seed)  # eager: exit 2
    run_worker(args.host, args.port, once=args.once, out=out,
               secret=secret, chaos=args.chaos,
               chaos_seed=args.chaos_seed)


def _cmd_deadletter(args: argparse.Namespace, out: TextIO) -> None:
    from repro.resilience import DeadLetterQueue, validate_reading
    from repro.rfid.simulator import RawReading

    if not os.path.exists(args.path):
        raise SaseError(f"{args.path}: no such dead-letter file")
    records = DeadLetterQueue.load(args.path)
    if args.action == "list":
        print(f"{len(records)} dead-letter record(s) in {args.path}",
              file=out)
        for record in records[:args.limit]:
            when = "?" if record.ingest_time is None \
                else f"{record.ingest_time:g}"
            payload = json.dumps(record.payload, sort_keys=True,
                                 default=repr)
            print(f"  [{record.stage}] {record.error_type}: "
                  f"{record.error} @ t={when} payload={payload}",
                  file=out)
        if len(records) > args.limit:
            print(f"  ... {len(records) - args.limit} more "
                  f"(--limit to raise)", file=out)
        return

    # replay: re-validate each quarantined reading.  Records that pass
    # now (e.g. after an upstream fix changed what gets quarantined)
    # are printed as JSON lines ready to re-ingest; the rest stay dead.
    recovered = 0
    still_dead = []
    for record in records:
        payload = record.payload
        reading = None
        if isinstance(payload, dict) and \
                set(payload) >= {"epc", "reader_id", "time"}:
            try:
                reading = RawReading(epc=payload["epc"],
                                     reader_id=payload["reader_id"],
                                     time=payload["time"])
            except (TypeError, ValueError):
                reading = None
        if reading is not None and validate_reading(reading) is None:
            recovered += 1
            print(json.dumps({"epc": reading.epc,
                              "reader_id": reading.reader_id,
                              "time": reading.time}), file=out)
        else:
            still_dead.append(record)
    print(f"-- replayed {len(records)} record(s): {recovered} valid "
          f"again, {len(still_dead)} still dead", file=out)
    if args.rewrite:
        DeadLetterQueue.rewrite(args.path, still_dead)
        print(f"-- rewrote {args.path} with {len(still_dead)} "
              f"record(s)", file=out)


def _cmd_bench(args: argparse.Namespace, out: TextIO) -> None:
    from repro.workloads.synthetic import SyntheticConfig, \
        SyntheticStream, seq_query
    stream = SyntheticStream.generate(SyntheticConfig(
        n_events=args.events, n_types=3, id_domain=40, seed=1))
    query = seq_query(3, window=args.window, partitioned=True)
    engine = Engine(stream.registry)
    for label, config in (
            ("optimized", PlanConfig()),
            ("no PAIS", PlanConfig().without("partition_pushdown")),
            ("no window pushdown",
             PlanConfig().without("window_pushdown"))):
        runtime = engine.runtime(query, config=config)
        started = time.perf_counter()
        results = sum(len(runtime.feed(event)) for event in stream.events)
        results += len(runtime.flush())
        elapsed = time.perf_counter() - started
        print(f"{label:>20}: {len(stream.events) / elapsed:10,.0f} "
              f"events/s  ({results} matches)", file=out)


def _cmd_serve(args: argparse.Namespace, out: TextIO) -> None:
    from repro.core.shared import SharedPlanConfig
    from repro.service import AdmissionPolicy, QueryService, TenantQuota
    from repro.service.server import serve as run_server

    registry = _load_schemas(args.schemas) if args.schemas \
        else retail_registry()
    service = QueryService(
        registry,
        policy=AdmissionPolicy(max_tenants=args.max_tenants,
                               max_total_queries=args.max_total_queries,
                               queue_limit=args.queue_limit),
        default_quota=TenantQuota(
            max_queries=args.tenant_max_queries,
            max_events_per_second=args.tenant_max_events_per_second,
            max_pending_results=args.tenant_max_pending_results),
        shared_plans=SharedPlanConfig(enabled=not args.no_shared_plans),
        manifest_path=args.manifest)
    if service.total_queries:
        print(f"restored {service.total_queries} query(ies) across "
              f"{len(service.tenants())} tenant(s) from {args.manifest}",
              file=out)

    def ready(port: int) -> None:
        print(f"listening on {args.host}:{port}", file=out, flush=True)

    run_server(service, host=args.host, port=args.port, ready=ready)
    if args.metrics_out:
        exporter = MetricsExporter(service.processor, args.metrics_out,
                                   service=service)
        exporter.flush()
        print(f"wrote metrics to {args.metrics_out}", file=out)
    print("service stopped", file=out)


def _cmd_client(args: argparse.Namespace, out: TextIO) -> None:
    from repro.service import ServiceClient

    def need(value: str | None, what: str) -> str:
        if value is None:
            raise SaseError(
                f"client {args.action} needs a {what} argument")
        return value

    with ServiceClient(host=args.host, port=args.port) as client:
        action = args.action
        if action == "ping":
            print("pong" if client.ping() else "no pong", file=out)
        elif action == "register":
            outcome = client.register(
                need(args.tenant, "TENANT"), need(args.name, "NAME"),
                _read_query(need(args.query, "QUERY")))
            status = outcome.get("status")
            line = status if status != "queued" \
                else f"queued at position {outcome.get('position')}"
            print(line, file=out)
        elif action == "withdraw":
            client.withdraw(need(args.tenant, "TENANT"),
                            need(args.name, "NAME"))
            print("withdrawn", file=out)
        elif action == "subscribe":
            client.subscribe(need(args.tenant, "TENANT"))
            received = 0
            while args.limit <= 0 or received < args.limit:
                push = client.wait_push()
                print(json.dumps(push, sort_keys=True), file=out,
                      flush=True)
                received += 1
        elif action == "feed":
            produced = 0
            count = 0
            for record in _read_event_records(
                    need(args.events, "--events")):
                produced += client.feed(need(args.tenant, "TENANT"),
                                        record)
                count += 1
            print(f"fed {count} event(s), {produced} result(s)",
                  file=out)
        elif action == "drain":
            for result in client.drain(need(args.tenant, "TENANT"),
                                       args.limit):
                print(json.dumps(result, sort_keys=True), file=out)
        elif action == "flush":
            print(f"flush released {client.flush()} result(s)",
                  file=out)
        elif action == "stats":
            print(json.dumps(client.stats(), indent=2, sort_keys=True),
                  file=out)
        elif action == "shutdown":
            client.shutdown()
            print("shutdown requested", file=out)


# -- helpers -----------------------------------------------------------------

def _read_query(spec: str) -> str:
    if spec.startswith("@"):
        with open(spec[1:], encoding="utf-8") as handle:
            return handle.read()
    return spec


def _read_event_records(path: str) -> Iterable[dict[str, Any]]:
    if path.endswith(".csv"):
        yield from _read_csv_records(path)
        return
    handle: TextIO
    if path == "-":
        handle = sys.stdin
        close = False
    else:
        handle = open(path, encoding="utf-8")
        close = True
    try:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SaseError(
                    f"{path}:{line_number}: invalid JSON: {exc}") from exc
            if not isinstance(record, dict) or "type" not in record \
                    or "timestamp" not in record:
                raise SaseError(
                    f"{path}:{line_number}: each event needs 'type' and "
                    f"'timestamp' fields")
            yield record
    finally:
        if close:
            handle.close()


def _read_csv_records(path: str) -> Iterable[dict[str, Any]]:
    """CSV events: a ``type`` and ``timestamp`` column plus one column per
    attribute.  Values are inferred (int, float, bool, string); empty
    cells mean the attribute is absent for that event."""
    import csv
    with open(path, encoding="utf-8", newline="") as handle:
        reader = csv.DictReader(handle)
        fields = reader.fieldnames or []
        if "type" not in fields or "timestamp" not in fields:
            raise SaseError(
                f"{path}: CSV events need 'type' and 'timestamp' columns; "
                f"found {fields}")
        for line_number, row in enumerate(reader, 2):
            try:
                timestamp = float(row["timestamp"])
            except (TypeError, ValueError):
                raise SaseError(
                    f"{path}:{line_number}: bad timestamp "
                    f"{row.get('timestamp')!r}") from None
            attributes = {}
            for key, raw in row.items():
                if key in ("type", "timestamp") or raw is None \
                        or raw == "":
                    continue
                attributes[key] = _infer_csv_value(raw)
            yield {"type": row["type"], "timestamp": timestamp,
                   "attributes": attributes}


def _infer_csv_value(raw: str) -> Any:
    lowered = raw.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        return raw


def _load_schemas(path: str) -> SchemaRegistry:
    with open(path, encoding="utf-8") as handle:
        spec = json.load(handle)
    if not isinstance(spec, dict):
        raise SaseError(f"{path}: schema file must be a JSON object")
    registry = SchemaRegistry()
    for type_name, attributes in spec.items():
        declared = {}
        for attr_name, word in attributes.items():
            if word not in _TYPE_WORDS:
                raise SaseError(
                    f"{path}: unknown attribute type {word!r} "
                    f"(use one of {sorted(_TYPE_WORDS)})")
            declared[attr_name] = _TYPE_WORDS[word]
        registry.declare(type_name, **declared)
    return registry


def _infer_registry(records: list[dict[str, Any]]) -> SchemaRegistry:
    """Infer one schema per event type from the records' attributes."""
    inferred: dict[str, dict[str, AttributeType]] = {}
    for record in records:
        attributes = record.get("attributes", {})
        slot = inferred.setdefault(record["type"], {})
        for key, value in attributes.items():
            if isinstance(value, bool):
                attr_type = AttributeType.BOOL
            elif isinstance(value, int):
                attr_type = AttributeType.INT
            elif isinstance(value, float):
                attr_type = AttributeType.FLOAT
            else:
                attr_type = AttributeType.STRING
            previous = slot.get(key)
            if previous is AttributeType.FLOAT and \
                    attr_type is AttributeType.INT:
                continue  # keep the wider type
            if previous is AttributeType.INT and \
                    attr_type is AttributeType.FLOAT:
                slot[key] = AttributeType.FLOAT
                continue
            slot[key] = attr_type
    registry = SchemaRegistry()
    for type_name, attributes in inferred.items():
        registry.declare(type_name, **attributes)
    return registry


def _to_event(record: dict[str, Any],
              registry: SchemaRegistry) -> Event:
    schema = registry.get(record["type"])
    payload = schema.validate_payload(record.get("attributes", {}),
                                      coerce=True)
    return Event(record["type"], float(record["timestamp"]), payload)


if __name__ == "__main__":
    sys.exit(main())
