"""Sequence indexes: the structures behind the engine's optimizations.

The paper's implementation section highlights "novel sequence indexes" that
index relevant events "both in temporal order and across value-based
partitions".  This package provides those two structures as reusable
components:

* :class:`~repro.indexes.time_index.TimeIndex` — events in temporal order
  with binary-searchable interval queries and front pruning;
* :class:`~repro.indexes.partition_index.PartitionedTimeIndex` — a
  :class:`TimeIndex` per partition-attribute value.

The negation operator and the relational baseline build on them; the active
instance stacks (:mod:`repro.core.instances`) are their specialisation for
sequence construction.
"""

from repro.indexes.partition_index import PartitionedTimeIndex
from repro.indexes.time_index import Interval, TimeIndex

__all__ = ["Interval", "PartitionedTimeIndex", "TimeIndex"]
