"""Temporal event index: interval queries over a time-ordered event list."""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Iterator

from repro.errors import StreamError
from repro.events.event import Event


@dataclass(frozen=True)
class Interval:
    """A time interval with per-edge inclusiveness.

    The negation operator's non-occurrence intervals are open at positive
    event timestamps and closed at window edges; this type makes those
    choices explicit.
    """

    low: float = -math.inf
    high: float = math.inf
    low_inclusive: bool = True
    high_inclusive: bool = True

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ValueError(
                f"interval low {self.low} exceeds high {self.high}")

    def contains(self, timestamp: float) -> bool:
        if timestamp < self.low or timestamp > self.high:
            return False
        if timestamp == self.low and not self.low_inclusive:
            return False
        if timestamp == self.high and not self.high_inclusive:
            return False
        return True


class TimeIndex:
    """Events appended in time order, queryable by interval.

    Supports the access paths the engine needs: *range* (all events in an
    interval), *exists* (any event in an interval), and *prune* (drop
    events older than a horizon).  Appends must be non-decreasing in
    timestamp.
    """

    __slots__ = ("_timestamps", "_events")

    def __init__(self) -> None:
        self._timestamps: list[float] = []
        self._events: list[Event] = []

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    @property
    def earliest(self) -> float | None:
        return self._timestamps[0] if self._timestamps else None

    @property
    def latest(self) -> float | None:
        return self._timestamps[-1] if self._timestamps else None

    def append(self, event: Event) -> None:
        if self._timestamps and event.timestamp < self._timestamps[-1]:
            raise StreamError(
                f"TimeIndex append out of order: {event.timestamp} after "
                f"{self._timestamps[-1]}")
        self._timestamps.append(event.timestamp)
        self._events.append(event)

    def _bounds(self, interval: Interval) -> tuple[int, int]:
        start = (bisect.bisect_left(self._timestamps, interval.low)
                 if interval.low_inclusive
                 else bisect.bisect_right(self._timestamps, interval.low))
        stop = (bisect.bisect_right(self._timestamps, interval.high)
                if interval.high_inclusive
                else bisect.bisect_left(self._timestamps, interval.high))
        return start, stop

    def range(self, interval: Interval) -> list[Event]:
        """All events whose timestamp lies in *interval*."""
        start, stop = self._bounds(interval)
        return self._events[start:stop]

    def exists(self, interval: Interval) -> bool:
        """True when at least one event lies in *interval*."""
        start, stop = self._bounds(interval)
        return start < stop

    def count(self, interval: Interval) -> int:
        start, stop = self._bounds(interval)
        return max(0, stop - start)

    def prune_before(self, horizon: float) -> int:
        """Drop events with ``timestamp < horizon``; returns the count."""
        cut = bisect.bisect_left(self._timestamps, horizon)
        if cut > 0:
            del self._timestamps[:cut]
            del self._events[:cut]
        return cut
