"""Value-partitioned temporal index: one TimeIndex per attribute value."""

from __future__ import annotations

from typing import Any, Iterator

from repro.events.event import Event
from repro.indexes.time_index import Interval, TimeIndex


class PartitionedTimeIndex:
    """A :class:`TimeIndex` per value of one partition attribute.

    This is the "across value-based partitions" half of the paper's
    sequence indexing: interval probes touch only the partition a match's
    equality class selects, independent of how many other values exist.
    Events lacking the partition attribute are indexed under ``None``.
    """

    __slots__ = ("attribute", "_partitions")

    def __init__(self, attribute: str):
        self.attribute = attribute
        self._partitions: dict[Any, TimeIndex] = {}

    def __len__(self) -> int:
        return sum(len(index) for index in self._partitions.values())

    @property
    def partition_count(self) -> int:
        return len(self._partitions)

    def keys(self) -> Iterator[Any]:
        return iter(self._partitions)

    def append(self, event: Event) -> None:
        key = event.attributes.get(self.attribute)
        index = self._partitions.get(key)
        if index is None:
            index = TimeIndex()
            self._partitions[key] = index
        index.append(event)

    def partition(self, key: Any) -> TimeIndex | None:
        return self._partitions.get(key)

    def range(self, key: Any, interval: Interval) -> list[Event]:
        index = self._partitions.get(key)
        return index.range(interval) if index is not None else []

    def exists(self, key: Any, interval: Interval) -> bool:
        index = self._partitions.get(key)
        return index.exists(interval) if index is not None else False

    def prune_before(self, horizon: float) -> int:
        """Prune every partition; empty partitions are removed."""
        dropped = 0
        emptied: list[Any] = []
        for key, index in self._partitions.items():
            dropped += index.prune_before(horizon)
            if len(index) == 0:
                emptied.append(key)
        for key in emptied:
            del self._partitions[key]
        return dropped
