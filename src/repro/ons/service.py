"""Local product-metadata service keyed by tag id.

The Event Generation layer queries this service to enrich raw readings with
the attributes its event schema requires (product name, expiration date,
saleable state, ...).  Lookups are memoised trivially by being a dict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import CleaningError


@dataclass(frozen=True)
class ProductRecord:
    """Metadata the ONS stores per tagged item."""

    tag_id: int
    product_name: str
    category: str = "general"
    price: float = 0.0
    expiration_date: str = ""
    saleable: bool = True
    home_area_id: int = 0  # the shelf this product belongs on (0 = none)

    def as_attributes(self) -> dict[str, object]:
        """The attribute fragment events are enriched with."""
        return {
            "ProductName": self.product_name,
            "Category": self.category,
            "Price": self.price,
            "ExpirationDate": self.expiration_date,
            "Saleable": self.saleable,
            "HomeAreaId": self.home_area_id,
        }


@dataclass
class ObjectNameService:
    """The simulated ONS: register items, look them up by tag."""

    _records: dict[int, ProductRecord] = field(default_factory=dict)

    def register(self, record: ProductRecord) -> None:
        if record.tag_id in self._records:
            raise CleaningError(
                f"tag {record.tag_id} is already registered with the ONS")
        self._records[record.tag_id] = record

    def register_product(self, tag_id: int, product_name: str,
                         **extra: object) -> ProductRecord:
        record = ProductRecord(tag_id=tag_id, product_name=product_name,
                               **extra)  # type: ignore[arg-type]
        self.register(record)
        return record

    def lookup(self, tag_id: int) -> ProductRecord | None:
        return self._records.get(tag_id)

    def known_tags(self) -> set[int]:
        return set(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[ProductRecord]:
        return iter(self._records.values())

    def __contains__(self, tag_id: int) -> bool:
        return tag_id in self._records
