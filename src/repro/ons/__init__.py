"""Simulated Object Name Service (ONS).

The paper's Event Generation layer retrieves product attributes "from a
tag's user-memory bank or from an Object Name Service"; like the authors,
"we simulate an ONS with a local database storing product metadata
associated with each item".
"""

from repro.ons.service import ObjectNameService, ProductRecord

__all__ = ["ObjectNameService", "ProductRecord"]
