"""The intermediate result flowing between plan operators.

A :class:`Match` is one candidate event sequence produced by sequence
construction: a binding of pattern variables to events (or event tuples for
Kleene components).  Downstream operators filter matches; Transformation
turns surviving matches into composite events.
"""

from __future__ import annotations

from typing import Mapping, Union

from repro.events.event import Event

Binding = Union[Event, tuple[Event, ...]]


class Match:
    """One candidate sequence match."""

    __slots__ = ("bindings", "start", "end")

    def __init__(self, bindings: Mapping[str, Binding],
                 start: float, end: float):
        self.bindings = dict(bindings)
        self.start = start
        self.end = end

    @classmethod
    def from_bindings(cls, bindings: Mapping[str, Binding]) -> "Match":
        """Build a match, deriving the interval from the bound events."""
        timestamps: list[float] = []
        for binding in bindings.values():
            if isinstance(binding, tuple):
                timestamps.extend(event.timestamp for event in binding)
            else:
                timestamps.append(binding.timestamp)
        if not timestamps:
            raise ValueError("a match must bind at least one event")
        return cls(bindings, min(timestamps), max(timestamps))

    def events(self) -> list[Event]:
        """All bound events, flattened, in binding order."""
        out: list[Event] = []
        for binding in self.bindings.values():
            if isinstance(binding, tuple):
                out.extend(binding)
            else:
                out.append(binding)
        return out

    def replace_binding(self, variable: str, binding: Binding) -> "Match":
        """A copy of this match with one binding replaced (used when a
        Kleene filter trims a binding)."""
        bindings = dict(self.bindings)
        bindings[variable] = binding
        return Match.from_bindings(bindings)

    @property
    def span(self) -> float:
        return self.end - self.start

    def __repr__(self) -> str:
        parts = []
        for variable, binding in self.bindings.items():
            if isinstance(binding, tuple):
                inner = ", ".join(f"{event.type}@{event.timestamp:g}"
                                  for event in binding)
                parts.append(f"{variable}=[{inner}]")
            else:
                parts.append(
                    f"{variable}={binding.type}@{binding.timestamp:g}")
        return f"Match({'; '.join(parts)})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Match):
            return NotImplemented
        return self.bindings == other.bindings

    def __hash__(self) -> int:
        items = []
        for variable, binding in sorted(self.bindings.items()):
            if isinstance(binding, tuple):
                items.append((variable,
                              tuple(event.seq for event in binding)))
            else:
                items.append((variable, binding.seq))
        return hash(tuple(items))
