"""Query plans: which operators run, with which optimizations.

The plan-based approach is the paper's implementation story: it "provides
flexibility in query execution" and "allows us to explore alternative query
plans".  :class:`PlanConfig` selects the alternatives; :func:`build_plan`
decides the operator chain for a given analyzed query, and
:meth:`QueryPlan.describe` renders an EXPLAIN-style summary.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.errors import PlanError
from repro.lang.semantics import AnalyzedQuery
from repro.nfa import NFA, compile_pattern


class KleeneMode(enum.Enum):
    """How a Kleene component binds the qualifying events in its interval.

    MAXIMAL binds all of them (one binding per anchor event) — cheap and
    what aggregates want.  ANY_SUBSET enumerates every order-preserving
    subset (capped), the strict skip-till-any-match reading.
    """

    MAXIMAL = "maximal"
    ANY_SUBSET = "any-subset"


@dataclass(frozen=True)
class PlanConfig:
    """Optimizer switches.

    The defaults enable every published optimization; benchmarks flip them
    off individually to reproduce the plan-comparison experiments.
    """

    window_pushdown: bool = True
    partition_pushdown: bool = True
    filter_pushdown: bool = True
    # Evaluate cross-component WHERE predicates during sequence
    # construction (early DFS pruning).  Off by default: with PAIS
    # absorbing the equality classes it rarely pays, but for selective
    # non-equality predicates it can (experiment E14 ablates it).
    construction_pushdown: bool = False
    kleene_mode: KleeneMode = KleeneMode.MAXIMAL
    max_kleene_events: int = 10
    prune_interval: int = 512
    # Per-query code generation (repro.core.codegen): the sequence scan
    # runs specialised, exec-compiled straight-line code instead of the
    # generic interpreter.  Automatically falls back to the interpreter
    # for expression shapes codegen does not cover.
    use_codegen: bool = True

    @classmethod
    def naive(cls) -> "PlanConfig":
        """All optimizations off: the no-pushdown baseline plan."""
        return cls(window_pushdown=False, partition_pushdown=False,
                   filter_pushdown=False)

    def without(self, *optimizations: str) -> "PlanConfig":
        """A copy with the named optimizations disabled, e.g.
        ``config.without("window_pushdown")``."""
        changes = {}
        for name in optimizations:
            if name not in ("window_pushdown", "partition_pushdown",
                            "filter_pushdown", "construction_pushdown",
                            "use_codegen"):
                raise PlanError(f"unknown optimization {name!r}")
            changes[name] = False
        return replace(self, **changes)

    def with_construction_pushdown(self) -> "PlanConfig":
        """A copy with construction-time predicate evaluation enabled."""
        return replace(self, construction_pushdown=True)


@dataclass
class QueryPlan:
    """The resolved execution strategy for one analyzed query."""

    analyzed: AnalyzedQuery
    config: PlanConfig
    nfa: NFA
    uses_partition: bool
    uses_window_pushdown: bool
    needs_window_filter: bool
    needs_selection: bool
    needs_kleene_filter: bool
    needs_negation: bool
    operator_names: list[str] = field(default_factory=list)

    def describe(self) -> str:
        """EXPLAIN-style plan description."""
        analyzed = self.analyzed

        def label(component) -> str:
            if component.is_any:
                return f"ANY({', '.join(component.event_types)})"
            return component.event_type

        pattern = ", ".join(
            ("!(" + label(component) + " " + component.variable + ")")
            if component.negated else
            label(component) + ("+" if component.kleene else "")
            + " " + component.variable
            for component in analyzed.components)
        lines = [f"Plan for EVENT SEQ({pattern})"]
        notes = []
        if self.uses_window_pushdown and analyzed.window is not None:
            notes.append(f"window={analyzed.window:g}s pushed down")
        elif analyzed.window is not None:
            notes.append(f"window={analyzed.window:g}s (filter operator)")
        if self.uses_partition and analyzed.partition is not None:
            keys = ", ".join(
                f"{variable}.{attribute}" for variable, attribute
                in sorted(analyzed.partition.attr_by_var.items()))
            notes.append(f"PAIS partitioned on [{keys}]")
        if self.config.filter_pushdown:
            pushed = sum(len(infos)
                         for infos in analyzed.component_filters.values())
            if pushed:
                notes.append(f"{pushed} single-variable predicate(s) "
                             f"pushed to scan")
        if self.config.construction_pushdown:
            notes.append("cross-component predicates checked during "
                         "construction")
        if self.config.use_codegen:
            notes.append("codegen: compiled scan (auto-fallback)")
        lines.append("  SSC  sequence scan + construction"
                     + (f" ({'; '.join(notes)})" if notes else ""))
        if self.needs_selection:
            residual = sum(
                1 for info in analyzed.selection_predicates
                if not (self.uses_partition and info.is_partition_equality))
            if not self.config.filter_pushdown:
                residual += sum(
                    len(infos)
                    for infos in analyzed.component_filters.values())
            lines.append(f"  SL   selection ({residual} predicate(s))")
        if self.needs_window_filter:
            lines.append(f"  WD   window filter ({analyzed.window:g}s)")
        if self.needs_kleene_filter:
            lines.append("  KF   kleene per-event predicates")
        if self.needs_negation:
            positions = []
            for component, prev_index, next_index in \
                    analyzed.negation_layout():
                n_positives = len(analyzed.positives)
                if prev_index < 0:
                    where = "leading"
                elif next_index >= n_positives:
                    where = "trailing (delayed emission)"
                else:
                    where = "middle"
                positions.append(f"!{label(component)} {where}")
            lines.append(f"  NG   negation ({'; '.join(positions)})")
        lines.append(f"  TF   transformation -> {analyzed.output_type}"
                     + (f" INTO {analyzed.output_stream}"
                        if analyzed.output_stream else ""))
        return "\n".join(lines)


def build_plan(analyzed: AnalyzedQuery,
               config: PlanConfig | None = None) -> QueryPlan:
    """Decide the operator chain for *analyzed* under *config*."""
    config = config or PlanConfig()
    nfa = compile_pattern(analyzed.query.pattern)

    uses_partition = (config.partition_pushdown
                      and analyzed.partition is not None)
    uses_window_pushdown = (config.window_pushdown
                            and analyzed.window is not None)
    needs_window_filter = (analyzed.window is not None
                           and not uses_window_pushdown
                           and len(analyzed.positives) > 1)
    residual_selection = any(
        not (uses_partition and info.is_partition_equality)
        for info in analyzed.selection_predicates)
    if config.construction_pushdown:
        # cross-component predicates move into the scan's DFS
        residual_selection = False
    if not config.filter_pushdown and any(
            infos for infos in analyzed.component_filters.values()):
        residual_selection = True
    needs_kleene_filter = any(
        infos for infos in analyzed.kleene_predicates.values())
    needs_negation = analyzed.has_negation

    plan = QueryPlan(
        analyzed=analyzed,
        config=config,
        nfa=nfa,
        uses_partition=uses_partition,
        uses_window_pushdown=uses_window_pushdown,
        needs_window_filter=needs_window_filter,
        needs_selection=residual_selection,
        needs_kleene_filter=needs_kleene_filter,
        needs_negation=needs_negation,
    )
    plan.operator_names = ["SSC"]
    if residual_selection:
        plan.operator_names.append("SL")
    if needs_window_filter:
        plan.operator_names.append("WD")
    if needs_kleene_filter:
        plan.operator_names.append("KF")
    if needs_negation:
        plan.operator_names.append("NG")
    plan.operator_names.append("TF")
    return plan
