"""The engine facade: compile SASE text, run it over streams.

This is the main entry point for library users::

    from repro import Engine, SchemaRegistry, AttributeType

    registry = SchemaRegistry()
    registry.declare("SHELF_READING", TagId=AttributeType.INT, ...)
    engine = Engine(registry)
    query = engine.compile('''
        EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z)
        WHERE x.TagId = y.TagId AND x.TagId = z.TagId
        WITHIN 12 hours
        RETURN x.TagId, z.AreaId
    ''')
    for alert in engine.run(query, stream):
        ...
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator

from repro.core.plan import PlanConfig, QueryPlan, build_plan
from repro.core.runtime import QueryRuntime
from repro.events.event import CompositeEvent, Event
from repro.events.model import SchemaRegistry
from repro.lang.ast import Query
from repro.lang.parser import parse_query
from repro.lang.semantics import AnalyzedQuery, analyze


@dataclass(frozen=True)
class CompiledQuery:
    """A query bound to schemas with a chosen plan."""

    analyzed: AnalyzedQuery
    plan: QueryPlan

    @property
    def text(self) -> str:
        return self.analyzed.query.text

    def explain(self) -> str:
        return self.plan.describe()


class Engine:
    """Compiles and executes SASE queries against a schema registry.

    ``functions`` is a :class:`~repro.funcs.FunctionRegistry` (or anything
    with a compatible ``call``); ``system`` is handed to those functions —
    the full SASE system passes a context carrying the event database.
    """

    def __init__(self, registry: SchemaRegistry, functions: Any = None,
                 system: Any = None, config: PlanConfig | None = None):
        self.registry = registry
        self.functions = functions
        self.system = system
        self.config = config or PlanConfig()

    def compile(self, query: str | Query,
                config: PlanConfig | None = None) -> CompiledQuery:
        """Parse (if needed), analyze, and plan a query."""
        parsed = parse_query(query) if isinstance(query, str) else query
        analyzed = analyze(parsed, self.registry)
        plan = build_plan(analyzed, config or self.config)
        return CompiledQuery(analyzed, plan)

    def runtime(self, query: str | Query | CompiledQuery,
                config: PlanConfig | None = None) -> QueryRuntime:
        """A fresh executable runtime for *query* (continuous execution)."""
        compiled = query if isinstance(query, CompiledQuery) \
            else self.compile(query, config)
        return QueryRuntime(compiled.plan, self.functions, self.system)

    def run(self, query: str | Query | CompiledQuery,
            events: Iterable[Event],
            config: PlanConfig | None = None) -> Iterator[CompositeEvent]:
        """One-shot execution over a finite stream."""
        yield from self.runtime(query, config).run(events)


def run_query(text: str, registry: SchemaRegistry,
              events: Iterable[Event], *, functions: Any = None,
              system: Any = None,
              config: PlanConfig | None = None) -> list[CompositeEvent]:
    """Convenience wrapper: compile and run a query, collecting results."""
    engine = Engine(registry, functions=functions, system=system,
                    config=config)
    return list(engine.run(text, events))
