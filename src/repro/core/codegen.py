"""Per-query code generation: the compiled SSC hot path.

The interpreted :class:`~repro.core.sequence.SequenceScanConstruct` walks
closure trees through per-call :class:`EvalContext` allocations and looks
up the plan shape (component count, Kleene flags, window, PAIS key) on
every event.  This module instead emits *Python source* specialised to one
analyzed query — ``compile()``/``exec``-based, not closure trees — and
builds a :class:`SequenceScanConstruct` subclass whose hot methods are the
generated functions:

* ``feed`` — the event-type dispatch is unrolled into an ``if``/``elif``
  chain; per-component admission (filter pushdown, PAIS key extraction,
  window pruning, RIP-pointer push) is straight-line code with the window,
  partition attribute, and prune interval baked in as constants.  Pushed
  single-variable filters become direct ``event.attributes[...]``
  comparisons with **zero** ``EvalContext`` allocation.
* ``feed_batch`` — a generated batch loop over N events sharing one
  prologue/epilogue: operator counters, the profiling hook lookup, and
  the group-table load are hoisted out of the loop, so per-event Python
  dispatch amortises across the batch.  Per-event observable effects
  (interval pruning, stack-size gauges, match order) are preserved
  exactly, and an optional ``bounds`` list records the cumulative match
  count after each event so callers can slice results per event.
* ``_construct`` — the backward DFS over the instance stacks is unrolled
  into nested ``for`` loops, one per component, operating directly on the
  stack slots (``_timestamps``/``_instances``/``_offset``) with
  ``bisect``-computed bounds, with construction-pushdown predicates
  inlined as direct comparisons at the loop level where their variables
  become bound.  This covers non-Kleene patterns *and* trailing-Kleene
  patterns under MAXIMAL semantics (the anchor/extras enumeration is
  generated too); other Kleene placements and ANY_SUBSET keep the
  inherited construction walk.
* ``_passes_construction_checks`` (patterns that keep the inherited
  walk) — pushdown predicates are still inlined, only the enumeration
  stays generic.

Two structural specialisations beyond straight-line translation:

* **Admit-time prune elision (non-Kleene shapes).**  The interpreted
  operator prunes a partition's stale stack fronts on every admission;
  the generated non-Kleene admit skips that and relies on the interval
  ``_prune_all`` alone.  This is match-identical on the supported
  (non-decreasing timestamp) domain: construction bounds every candidate
  by ``end_ts - window``, which is at least as new as any per-admit
  horizon, so instances a per-admit prune would have dropped can never
  appear in a match — they only linger in the gauges until the next
  interval prune.  Kleene shapes keep the exact interpreted admission
  (their binding *contents* enumerate raw stack ranges, so stack
  membership must match the interpreter event-for-event).
* **Partition-key fusion.**  When the WHERE clause contains a *second*
  cross-component equality class covering every positive component (the
  first one is already the PAIS partition), its attributes are fused
  into the partition key as a tuple and the equality conjuncts are
  dropped from the construction checks: partitioning enforces them for
  free and false candidates are never enumerated.  Tuple keys compare
  with the same ``==`` the predicates would evaluate, so matching is
  identical; only the partition-count gauges differ.

Semantics parity is non-negotiable: every generated predicate runs inside
``try``/``except`` and falls back to the interpreted closure when the
straight-line evaluation raises, so missing attributes, type errors, and
division by zero surface the exact interpreter ``EvaluationError``.
Expression shapes the translator does not cover (function calls into the
``_`` library, aggregates, bare variable references) make
:func:`compile_scan` return ``None`` and the caller falls back to the
interpreter wholesale; the differential test suite proves the two paths
are bit-identical over the seed query corpus and fuzzed streams —
compiled vs interpreted *and* batched vs per-event.

Known (documented) divergences: generated arithmetic trusts the
analyzer's static types, so an event whose attribute *violates its
declared schema* (e.g. a bool where the schema says INT) can be computed
where the interpreter would raise; and a fused partition key reads
attributes with ``.get``, so an event *missing* a fused attribute is
silently skipped where the interpreter would raise ``EvaluationError``
on the first candidate sequence containing it.  Schema-conforming
streams behave identically.
"""

from __future__ import annotations

from bisect import bisect_left as _bisect_left
from bisect import bisect_right as _bisect_right
from typing import Any

from repro.core.expressions import EvalContext, _as_bool
from repro.core.instances import Instance, StackGroup
from repro.core.match import Match
from repro.core.sequence import SequenceScanConstruct, _NO_PARTITION
from repro.core.stats import PlanStats
from repro.lang.ast import (
    AttributeRef,
    BinaryOp,
    BinOpKind,
    Expr,
    Literal,
    UnaryOp,
    UnOpKind,
)
from repro.lang.semantics import AnalyzedQuery


class UnsupportedShape(Exception):
    """An expression or plan shape with no source translation; the caller
    must use the interpreted operator."""


# -- expression translation --------------------------------------------------

_COMPARE_OPS = {
    BinOpKind.EQ: "==",
    BinOpKind.NEQ: "!=",
    BinOpKind.LT: "<",
    BinOpKind.LTE: "<=",
    BinOpKind.GT: ">",
    BinOpKind.GTE: ">=",
}

_ARITH_OPS = {
    BinOpKind.ADD: "+",
    BinOpKind.SUB: "-",
    BinOpKind.MUL: "*",
    BinOpKind.DIV: "/",
    BinOpKind.MOD: "%",
}

_TIMESTAMP_ATTRS = ("Timestamp", "timestamp")


def value_source(expr: Expr, names: dict[str, str]) -> str:
    """Translate *expr* to a Python expression over the event locals in
    *names* (variable name -> source of the bound Event)."""
    if isinstance(expr, Literal):
        return repr(expr.value)
    if isinstance(expr, AttributeRef):
        base = names.get(expr.variable)
        if base is None:
            raise UnsupportedShape(
                f"variable {expr.variable!r} not bound at this point")
        if expr.attribute in _TIMESTAMP_ATTRS:
            return f"{base}.timestamp"
        return f"{base}.attributes[{expr.attribute!r}]"
    if isinstance(expr, UnaryOp):
        if expr.op is UnOpKind.NOT:
            return predicate_source(expr.operand, names)
        return f"(-{value_source(expr.operand, names)})"
    if isinstance(expr, BinaryOp):
        op = expr.op
        if op in _COMPARE_OPS or op.is_logical:
            return predicate_source(expr, names)
        left = value_source(expr.left, names)
        right = value_source(expr.right, names)
        return f"({left} {_ARITH_OPS[op]} {right})"
    raise UnsupportedShape(
        f"no source translation for {type(expr).__name__}")


def predicate_source(expr: Expr, names: dict[str, str]) -> str:
    """Translate a boolean expression; non-boolean-producing subtrees are
    wrapped in ``_as_bool`` so misbehaving values fail exactly like the
    interpreter."""
    if isinstance(expr, BinaryOp):
        op = expr.op
        if op is BinOpKind.AND:
            return (f"({predicate_source(expr.left, names)} and "
                    f"{predicate_source(expr.right, names)})")
        if op is BinOpKind.OR:
            return (f"({predicate_source(expr.left, names)} or "
                    f"{predicate_source(expr.right, names)})")
        if op in _COMPARE_OPS:
            return (f"({value_source(expr.left, names)} "
                    f"{_COMPARE_OPS[op]} "
                    f"{value_source(expr.right, names)})")
    if isinstance(expr, UnaryOp) and expr.op is UnOpKind.NOT:
        return f"(not {predicate_source(expr.operand, names)})"
    return f"_as_bool({value_source(expr, names)})"


# -- source assembly ---------------------------------------------------------

class _Writer:
    """Indentation-tracking line collector."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self.depth = 0

    def emit(self, text: str = "") -> None:
        self.lines.append("    " * self.depth + text if text else "")

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


class _ScanShape:
    """The plan constants the generator unrolls, derived exactly as the
    interpreted operator's constructor derives them."""

    def __init__(self, analyzed: AnalyzedQuery, *, window_pushdown: bool,
                 partition_pushdown: bool, filter_pushdown: bool,
                 construction_pushdown: bool, prune_interval: int,
                 kleene_maximal: bool = True, profiling: bool = False):
        positives = analyzed.positives
        self.n = len(positives)
        self.profiling = profiling
        self.variables = [component.variable for component in positives]
        self.kleene = [component.kleene for component in positives]
        self.has_kleene = any(self.kleene)
        # The construction walk can be generated for non-Kleene patterns
        # and for a single trailing Kleene component under MAXIMAL
        # semantics; everything else inherits the interpreted walk.
        self.trailing_kleene = (self.has_kleene and kleene_maximal
                                and self.kleene[self.n - 1]
                                and sum(self.kleene) == 1)
        self.generated_construct = not self.has_kleene or \
            self.trailing_kleene
        self.window = analyzed.window if window_pushdown else None
        self.prune_interval = max(1, prune_interval)

        self.by_type: dict[str, list[int]] = {}
        for index, component in enumerate(positives):
            if not component.event_types:  # pragma: no cover - defensive
                raise UnsupportedShape("component with no event types")
            for event_type in component.event_types:
                self.by_type.setdefault(event_type, []).append(index)
        for indexes in self.by_type.values():
            indexes.sort(reverse=True)

        position = {variable: index for index, variable
                    in enumerate(self.variables)}

        self.key_attrs: list[str] | None = None
        if partition_pushdown and analyzed.partition is not None:
            attrs = [analyzed.partition.key_attribute(variable)
                     for variable in self.variables]
            if all(attr is not None for attr in attrs):
                self.key_attrs = [attr for attr in attrs
                                  if attr is not None]

        # Partition-key fusion: further cross-component equality classes
        # that cover every component collapse into the partition key.
        self.fused_attrs: list[list[str]] = []
        self._fused_ids: set[int] = set()
        if self.key_attrs is not None and not self.has_kleene \
                and self.n > 1:
            self._detect_fusion(analyzed, position)

        # Per-component filter sources (filter pushdown), evaluated over a
        # local named ``event``.
        self.filter_src: list[str | None] = [None] * self.n
        if filter_pushdown:
            for index, variable in enumerate(self.variables):
                sources = [predicate_source(info.expr, {variable: "event"})
                           for info in
                           analyzed.component_filters.get(variable, ())]
                if sources:
                    self.filter_src[index] = " and ".join(sources)

        # Construction-pushdown predicates grouped by trigger index (the
        # minimum component position among their variables) — mirrors the
        # interpreted constructor, including the PAIS-equality and
        # Kleene-variable exclusions; conjuncts fused into the partition
        # key are enforced by partitioning and dropped here.
        self.check_exprs: list[list[Expr]] = [[] for _ in range(self.n)]
        self.has_checks = False
        if construction_pushdown:
            kleene_vars = {variable for index, variable
                           in enumerate(self.variables)
                           if self.kleene[index]}
            for pred_id, info in enumerate(analyzed.selection_predicates):
                if self.key_attrs is not None and \
                        info.is_partition_equality:
                    continue
                if pred_id in self._fused_ids:
                    continue
                if info.variables & kleene_vars:
                    continue
                trigger = min(position[variable]
                              for variable in info.variables)
                self.check_exprs[trigger].append(info.expr)
                self.has_checks = True

    def _detect_fusion(self, analyzed: AnalyzedQuery,
                       position: dict[str, int]) -> None:
        """Union-find over simple cross-variable equality conjuncts; any
        class covering all components with one attribute per component
        becomes extra partition-key columns."""
        candidates: list[tuple[int, tuple[str, str], tuple[str, str]]] = []
        for pred_id, info in enumerate(analyzed.selection_predicates):
            if info.is_partition_equality:
                continue
            expr = info.expr
            if not (isinstance(expr, BinaryOp)
                    and expr.op is BinOpKind.EQ):
                continue
            left, right = expr.left, expr.right
            if not (isinstance(left, AttributeRef)
                    and isinstance(right, AttributeRef)):
                continue
            if left.variable == right.variable or \
                    left.variable not in position or \
                    right.variable not in position:
                continue
            if left.attribute in _TIMESTAMP_ATTRS or \
                    right.attribute in _TIMESTAMP_ATTRS:
                continue
            candidates.append((pred_id,
                               (left.variable, left.attribute),
                               (right.variable, right.attribute)))
        if not candidates:
            return

        parent: dict[tuple[str, str], tuple[str, str]] = {}

        def find(node: tuple[str, str]) -> tuple[str, str]:
            while parent[node] != node:
                parent[node] = parent[parent[node]]
                node = parent[node]
            return node

        for _, left, right in candidates:
            parent.setdefault(left, left)
            parent.setdefault(right, right)
            root_l, root_r = find(left), find(right)
            if root_l != root_r:
                parent[root_l] = root_r

        classes: dict[tuple[str, str], list[tuple[str, str]]] = {}
        for node in parent:
            classes.setdefault(find(node), []).append(node)

        all_vars = set(self.variables)
        for root, members in classes.items():
            var_attrs: dict[str, list[str]] = {}
            for variable, attribute in members:
                var_attrs.setdefault(variable, []).append(attribute)
            if set(var_attrs) != all_vars:
                continue
            if any(len(attrs) != 1 for attrs in var_attrs.values()):
                continue  # ambiguous: keep as construction checks
            self.fused_attrs.append(
                [var_attrs[variable][0] for variable in self.variables])
            for pred_id, left, _ in candidates:
                if find(left) == root:
                    self._fused_ids.add(pred_id)

    def check_sources(self, index: int,
                      names: dict[str, str]) -> str | None:
        exprs = self.check_exprs[index]
        if not exprs:
            return None
        return " and ".join(predicate_source(expr, names)
                            for expr in exprs)


def generate_scan_source(analyzed: AnalyzedQuery, *,
                         window_pushdown: bool = True,
                         partition_pushdown: bool = True,
                         filter_pushdown: bool = True,
                         construction_pushdown: bool = False,
                         prune_interval: int = 512,
                         kleene_maximal: bool = True,
                         profiling: bool = False) -> str:
    """Emit the specialised operator source for *analyzed*.

    With ``profiling`` the generated hot path includes the same
    per-component admit/construct counters the interpreted operator
    keeps; without it no profiling code is emitted at all, so the
    disabled path carries zero overhead.

    Raises :class:`UnsupportedShape` when any pushed predicate cannot be
    translated to straight-line code.
    """
    shape = _ScanShape(
        analyzed, window_pushdown=window_pushdown,
        partition_pushdown=partition_pushdown,
        filter_pushdown=filter_pushdown,
        construction_pushdown=construction_pushdown,
        prune_interval=prune_interval,
        kleene_maximal=kleene_maximal, profiling=profiling)
    writer = _Writer()
    _generate_feed(writer, shape)
    writer.emit()
    _generate_feed_batch(writer, shape)
    if shape.generated_construct:
        writer.emit()
        if shape.trailing_kleene:
            _generate_kleene_construct(writer, shape)
        else:
            _generate_construct(writer, shape)
    elif shape.has_checks:
        writer.emit()
        _generate_check_override(writer, shape)
    return writer.source()


def _emit_event_body(w: _Writer, shape: _ScanShape,
                     count: str = "self._instance_count") -> None:
    """The per-event scan body shared by ``feed`` and ``feed_batch``:
    type dispatch plus per-component admission.  Expects locals
    ``event``, ``_ts``, ``_groups``, ``_pushed`` (and ``_prof`` when
    profiling).  *count* names the live-instance counter — the batch
    loop hoists it into a local."""
    keyword = "if"
    for event_type, indexes in shape.by_type.items():
        w.emit(f"{keyword} _t == {event_type!r}:")
        keyword = "elif"
        w.depth += 1
        for index in indexes:  # descending
            _generate_admit(w, shape, index, count)
        w.depth -= 1


def _generate_feed(w: _Writer, shape: _ScanShape) -> None:
    w.emit("def feed(self, event):")
    w.depth += 1
    w.emit("_op = self._op_stats")
    w.emit("_op.consumed += 1")
    if shape.profiling:
        w.emit("_prof = self._profile")
    if shape.window is not None:
        w.emit("_seen = self._events_seen + 1")
        w.emit("self._events_seen = _seen")
    else:
        # No window means _prune_all is a no-op: skip the interval
        # arithmetic entirely.
        w.emit("self._events_seen += 1")
    w.emit("matches = []")
    w.emit("_ts = event.timestamp")
    w.emit("_groups = self._groups")
    w.emit("_pushed = False")
    w.emit("_t = event.type")
    _emit_event_body(w, shape)
    if shape.window is not None:
        w.emit(f"if _seen % {shape.prune_interval} == 0:")
        w.emit("    self._prune_all(_ts)")
    # High-water marks only move on a push (group creation implies one),
    # and a feed that pushed records *after* any interval prune — exactly
    # the interpreter's observation point.
    w.emit("if _pushed:")
    w.depth += 1
    w.emit("_stats = self._stats")
    w.emit("_ic = self._instance_count")
    w.emit("if _ic > _stats.stack_high_water:")
    w.emit("    _stats.stack_high_water = _ic")
    w.emit("_gl = len(_groups)")
    w.emit("if _gl > _stats.partitions_high_water:")
    w.emit("    _stats.partitions_high_water = _gl")
    w.emit("_op.produced += len(matches)")
    if shape.profiling:
        w.emit("if _prof is not None:")
        w.emit("    _prof.matches_emitted += len(matches)")
    w.depth -= 1
    w.emit("return matches")
    w.depth -= 1


def _generate_feed_batch(w: _Writer, shape: _ScanShape) -> None:
    """The batch loop: one prologue/epilogue for N events, per-event
    effects (interval prune, gauges, bounds) preserved exactly."""
    w.emit("def feed_batch(self, events, bounds=None):")
    w.depth += 1
    w.emit("_op = self._op_stats")
    if shape.profiling:
        w.emit("_prof = self._profile")
    w.emit("_seen = self._events_seen")
    w.emit("matches = []")
    w.emit("_groups = self._groups")
    w.emit("_stats = self._stats")
    w.emit("_icount = self._instance_count")
    w.emit("_fed = 0")
    # try/finally keeps the written-back counters exception-transparent:
    # an error escaping event k leaves the same _events_seen /
    # _instance_count the per-event loop would have.
    w.emit("try:")
    w.depth += 1
    w.emit("for event in events:")
    w.depth += 1
    w.emit("_fed += 1")
    w.emit("_seen += 1")
    w.emit("_ts = event.timestamp")
    w.emit("_pushed = False")
    w.emit("_t = event.type")
    _emit_event_body(w, shape, count="_icount")
    if shape.window is not None:
        w.emit(f"if _seen % {shape.prune_interval} == 0:")
        w.emit("    self._instance_count = _icount")
        w.emit("    self._prune_all(_ts)")
        w.emit("    _icount = self._instance_count")
    w.emit("if _pushed:")
    w.emit("    if _icount > _stats.stack_high_water:")
    w.emit("        _stats.stack_high_water = _icount")
    w.emit("    _gl = len(_groups)")
    w.emit("    if _gl > _stats.partitions_high_water:")
    w.emit("        _stats.partitions_high_water = _gl")
    w.emit("if bounds is not None:")
    w.emit("    bounds.append(len(matches))")
    w.depth -= 1
    w.depth -= 1
    w.emit("finally:")
    w.emit("    self._events_seen = _seen")
    w.emit("    self._instance_count = _icount")
    w.emit("    _op.consumed += _fed")
    w.emit("_op.produced += len(matches)")
    if shape.profiling:
        w.emit("if _prof is not None:")
        w.emit("    _prof.matches_emitted += len(matches)")
    w.emit("return matches")
    w.depth -= 1


def _generate_admit(w: _Writer, shape: _ScanShape, index: int,
                    count: str = "self._instance_count") -> None:
    w.emit(f"# admit into component {index} "
           f"({shape.variables[index]})")
    entry_depth = w.depth
    condition = shape.filter_src[index]
    if condition is not None:
        w.emit("try:")
        w.emit(f"    _ok = {condition}")
        w.emit("except Exception:")
        w.emit(f"    _ok = self._filters_fallback({index}, event)")
        w.emit("if _ok:")
        w.depth += 1
    if shape.key_attrs is not None:
        w.emit(f"_key = event.attributes.get({shape.key_attrs[index]!r})")
        w.emit("if _key is not None:")
        w.depth += 1
        if shape.fused_attrs:
            extra = ", ".join(
                f"event.attributes.get({attrs[index]!r})"
                for attrs in shape.fused_attrs)
            w.emit(f"_key = (_key, {extra})")
        key_src = "_key"
    else:
        key_src = "_NO_PARTITION"
    w.emit(f"_group = _groups.get({key_src})")
    if shape.has_kleene:
        _emit_admit_pruning(w, shape, index, key_src, count)
    else:
        _emit_admit_fast(w, shape, index, key_src, count)
    w.depth = entry_depth


def _emit_group_prune(w: _Writer, shape: _ScanShape,
                      count: str) -> None:
    """The unrolled body of ``StackGroup.prune_before(_ts - window)``:
    one bisect per stack, bulk-delete only when something expired.
    Byte-identical stack state to the interpreter's per-admit prune."""
    w.emit(f"_cut = _ts - {shape.window!r}")
    for position in range(shape.n):
        w.emit(f"_ps = _group.stacks[{position}]")
        w.emit("_pst = _ps._timestamps")
        w.emit("if _pst and _pst[0] < _cut:")
        w.emit("    _pc = _bisect_left(_pst, _cut)")
        w.emit("    del _ps._instances[:_pc]")
        w.emit("    del _pst[:_pc]")
        w.emit("    _ps._offset += _pc")
        w.emit(f"    {count} -= _pc")


def _emit_admit_pruning(w: _Writer, shape: _ScanShape, index: int,
                        key_src: str, count: str) -> None:
    """Admission with per-admit front pruning — the exact interpreted
    behaviour, required for Kleene shapes whose binding contents
    enumerate raw stack ranges."""
    if index == 0:
        w.emit("if _group is None:")
        w.emit(f"    _group = StackGroup({shape.n})")
        w.emit(f"    _groups[{key_src}] = _group")
        if shape.window is not None:
            w.emit("else:")
            w.depth += 1
            _emit_group_prune(w, shape, count)
            w.depth -= 1
        w.emit("_s = _group.stacks[0]")
        w.emit("_inst = Instance(event, -1)")
        w.emit("_s._instances.append(_inst)")
        w.emit("_s._timestamps.append(_ts)")
        w.emit(f"{count} += 1")
        w.emit("_pushed = True")
        if shape.profiling:
            w.emit("if _prof is not None:")
            w.emit("    _prof.admits[0] += 1")
        if shape.n == 1:
            w.emit("self._construct(_group, _inst, matches)")
    else:
        w.emit("if _group is not None:")
        w.depth += 1
        if shape.window is not None:
            _emit_group_prune(w, shape, count)
        w.emit(f"_prev = _group.stacks[{index - 1}]")
        w.emit("_pt = _prev._timestamps")
        w.emit("if _pt and _pt[0] < _ts:")
        w.depth += 1
        w.emit(f"_s = _group.stacks[{index}]")
        w.emit("_inst = Instance(event, _prev._offset + len(_pt) - 1)")
        w.emit("_s._instances.append(_inst)")
        w.emit("_s._timestamps.append(_ts)")
        w.emit(f"{count} += 1")
        w.emit("_pushed = True")
        if shape.profiling:
            w.emit("if _prof is not None:")
            w.emit(f"    _prof.admits[{index}] += 1")
        if index == shape.n - 1:
            w.emit("self._construct(_group, _inst, matches)")


def _emit_admit_fast(w: _Writer, shape: _ScanShape, index: int,
                     key_src: str, count: str) -> None:
    """Admission without per-admit pruning (non-Kleene shapes): pushes
    straight onto the stack slots; staleness is handled by the interval
    prune and the construction window bound (see module docstring)."""
    if index == 0:
        w.emit("if _group is None:")
        w.emit(f"    _group = StackGroup({shape.n})")
        w.emit(f"    _groups[{key_src}] = _group")
        w.emit("_s = _group.stacks[0]")
        w.emit("_inst = Instance(event, -1)")
        w.emit("_s._instances.append(_inst)")
        w.emit("_s._timestamps.append(_ts)")
        w.emit(f"{count} += 1")
        w.emit("_pushed = True")
        if shape.profiling:
            w.emit("if _prof is not None:")
            w.emit("    _prof.admits[0] += 1")
        if shape.n == 1:
            w.emit("self._construct(_group, _inst, matches)")
    else:
        w.emit("if _group is not None:")
        w.depth += 1
        w.emit(f"_prev = _group.stacks[{index - 1}]")
        w.emit("_pt = _prev._timestamps")
        w.emit("if _pt and _pt[0] < _ts:")
        w.depth += 1
        w.emit(f"_s = _group.stacks[{index}]")
        w.emit("_inst = Instance(event, _prev._offset + len(_pt) - 1)")
        w.emit("_s._instances.append(_inst)")
        w.emit("_s._timestamps.append(_ts)")
        w.emit(f"{count} += 1")
        w.emit("_pushed = True")
        if shape.profiling:
            w.emit("if _prof is not None:")
            w.emit(f"    _prof.admits[{index}] += 1")
        if index == shape.n - 1:
            if shape.n == 2 and shape.generated_construct:
                _emit_inline_pair_construct(w, shape)
            else:
                w.emit("self._construct(_group, _inst, matches)")


def _emit_inline_pair_construct(w: _Writer, shape: _ScanShape) -> None:
    """Construction fused into the last-admit site for two-component
    non-Kleene patterns: the predecessor stack slots are already in
    locals (``_prev``/``_pt``), and the freshly pushed trigger's RIP
    covers the whole stack, so the strictly-older bisect alone bounds
    the candidate walk — no method call, no rip/offset arithmetic."""
    if shape.profiling:
        w.emit("if _prof is not None:")
        w.emit("    _prof.construct_calls += 1")
    w.emit("_e1 = event")
    if shape.window is not None:
        w.emit(f"_min = _ts - {shape.window!r}")
    condition = shape.check_sources(1, _construct_names(shape, 1))
    if condition is not None:
        w.emit("try:")
        w.emit(f"    _ok = {condition}")
        w.emit("except Exception:")
        w.emit("    _ok = _BASE._passes_construction_checks("
               "self, 1, (None, _e1))")
        w.emit("if _ok:")
        w.depth += 1
    if shape.window is not None:
        # The predecessor stack may be entirely window-stale between
        # interval prunes; its newest entry bounds the whole candidate
        # range, so one comparison skips both bisects.
        w.emit("if _pt[-1] >= _min:")
        w.depth += 1
    w.emit("_hi0 = _bisect_left(_pt, _ts) - 1")
    low = "_bisect_left(_pt, _min)" if shape.window is not None else "0"
    w.emit(f"_l0 = _prev._instances")
    w.emit(f"for _x0 in range({low}, _hi0 + 1):")
    w.depth += 1
    w.emit("_i0 = _l0[_x0]")
    w.emit("_e0 = _i0.event")
    _emit_check_guard(w, shape, 0, "continue")
    bindings = f"{shape.variables[0]!r}: _e0, {shape.variables[1]!r}: _e1"
    w.emit(f"matches.append(Match({{{bindings}}}, _e0.timestamp, _ts))")


def _construct_names(shape: _ScanShape, bound_from: int) -> dict[str, str]:
    """Variable -> local name map for construction-check translation when
    positions ``bound_from .. n-1`` are bound to ``_e<i>`` locals (the
    Kleene position, if any, is bound to a tuple and never referenced by
    a check — Kleene-variable predicates stay in the KleeneFilter)."""
    return {shape.variables[position]: f"_e{position}"
            for position in range(bound_from, shape.n)
            if not shape.kleene[position]}


def _fallback_padding(shape: _ScanShape, index: int) -> str:
    """The ``chosen`` tuple source for the interpreted-check fallback:
    unbound positions are None, bound ones the construct locals."""
    parts = ["None"] * index
    for position in range(index, shape.n):
        parts.append("_bK" if shape.kleene[position] else f"_e{position}")
    return ", ".join(parts)


def _emit_check_guard(w: _Writer, shape: _ScanShape, index: int,
                      on_fail: str) -> None:
    """Inline the construction-pushdown predicates triggered at *index*,
    falling back to the interpreted check (which re-raises exactly) when
    the straight-line evaluation raises."""
    condition = shape.check_sources(index, _construct_names(shape, index))
    if condition is None:
        return
    w.emit("try:")
    w.emit(f"    _ok = {condition}")
    w.emit("except Exception:")
    w.emit(f"    _ok = _BASE._passes_construction_checks("
           f"self, {index}, ({_fallback_padding(shape, index)},))")
    w.emit("if not _ok:")
    w.emit(f"    {on_fail}")


def _emit_level_hoists(w: _Writer, shape: _ScanShape) -> None:
    """Per-level stack slot loads shared by every candidate walk in one
    construct call: timestamps, instances, and the window low bound."""
    for level in range(shape.n - 2, -1, -1):
        w.emit(f"_s{level} = _stacks[{level}]")
        w.emit(f"_t{level} = _s{level}._timestamps")
        w.emit(f"_l{level} = _s{level}._instances")
        if shape.window is not None:
            w.emit(f"_lo{level} = _bisect_left(_t{level}, _min)")


def _emit_descend_loops(w: _Writer, shape: _ScanShape, rip_src: str,
                        before_src: str, kleene_binding: bool) -> None:
    """Nested candidate loops for levels ``n-2 .. 0`` (the interpreted
    ``_descend`` recursion unrolled), ending in the match emission."""
    n = shape.n
    for level in range(n - 2, -1, -1):
        w.emit(f"_hi{level} = _bisect_left(_t{level}, {before_src}) - 1")
        w.emit(f"_r{level} = {rip_src} - _s{level}._offset")
        w.emit(f"if _r{level} < _hi{level}:")
        w.emit(f"    _hi{level} = _r{level}")
        low = f"_lo{level}" if shape.window is not None else "0"
        w.emit(f"for _x{level} in range({low}, _hi{level} + 1):")
        w.depth += 1
        w.emit(f"_i{level} = _l{level}[_x{level}]")
        w.emit(f"_e{level} = _i{level}.event")
        _emit_check_guard(w, shape, level, "continue")
        rip_src = f"_i{level}.rip"
        before_src = f"_t{level}[_x{level}]"
    bindings = ", ".join(
        f"{shape.variables[position]!r}: "
        + ("_bK" if shape.kleene[position] else f"_e{position}")
        for position in range(n))
    if n > 1:
        start = "_e0.timestamp" if not shape.kleene[0] else \
            "_bK[0].timestamp"
    else:
        start = "_bK[0].timestamp" if kleene_binding else "_end"
    w.emit(f"matches.append(Match({{{bindings}}}, {start}, _end))")


def _generate_construct(w: _Writer, shape: _ScanShape) -> None:
    """The backward DFS unrolled into nested loops (non-Kleene patterns),
    walking the stack slots directly with bisect-computed bounds.

    Loop nesting binds components ``n-2 .. 0`` exactly like the
    interpreted ``_descend`` recursion, so the emitted match order is
    identical."""
    n = shape.n
    last = n - 1
    w.emit("def _construct(self, group, trigger, matches):")
    w.depth += 1
    if shape.profiling:
        w.emit("_prof = self._profile")
        w.emit("if _prof is not None:")
        w.emit("    _prof.construct_calls += 1")
    w.emit("_stacks = group.stacks")
    w.emit(f"_e{last} = trigger.event")
    w.emit(f"_end = _e{last}.timestamp")
    if shape.window is not None:
        w.emit(f"_min = _end - {shape.window!r}")
    _emit_check_guard(w, shape, last, "return")
    _emit_level_hoists(w, shape)
    _emit_descend_loops(w, shape, "trigger.rip", "_end",
                        kleene_binding=False)
    w.depth = 0


def _generate_kleene_construct(w: _Writer, shape: _ScanShape) -> None:
    """Trailing-Kleene (MAXIMAL) construction: anchor enumeration and
    extras collection generated from the stack slots, then the same
    unrolled descend as the non-Kleene walk per anchor binding.

    Binding order matches the interpreted ``_last_kleene_bindings``
    exactly: the singleton ``(trigger,)`` first, then every anchor in
    ascending stack order with its maximal run of extras."""
    n = shape.n
    last = n - 1
    w.emit("def _construct(self, group, trigger, matches):")
    w.depth += 1
    if shape.profiling:
        w.emit("_prof = self._profile")
        w.emit("if _prof is not None:")
        w.emit("    _prof.construct_calls += 1")
    w.emit("_stacks = group.stacks")
    w.emit("_eT = trigger.event")
    w.emit("_end = _eT.timestamp")
    if shape.window is not None:
        w.emit(f"_min = _end - {shape.window!r}")
    w.emit(f"_sK = _stacks[{last}]")
    w.emit("_tK = _sK._timestamps")
    w.emit("_lK = _sK._instances")
    # Anchor candidates: index <= last_absolute (always true for the
    # freshly pushed trigger's stack), ts strictly below the trigger,
    # ts >= the window bound.  _hiA + 1 is also the exclusive upper
    # bound of each anchor's extras run (everything below the trigger).
    w.emit("_hiA = _bisect_left(_tK, _end) - 1")
    lo_a = "_bisect_left(_tK, _min)" if shape.window is not None else "0"
    w.emit("_cands = [((_eT,), trigger.rip, _end)]")
    w.emit(f"for _xA in range({lo_a}, _hiA + 1):")
    w.depth += 1
    w.emit("_iA = _lK[_xA]")
    w.emit("_tsA = _tK[_xA]")
    w.emit("_xlo = _bisect_right(_tK, _tsA)")
    w.emit("_cands.append(((_iA.event, "
           "*[_q.event for _q in _lK[_xlo:_hiA + 1]], _eT), "
           "_iA.rip, _tsA))")
    w.depth -= 1
    _emit_level_hoists(w, shape)
    w.emit("for _bK, _ripK, _beforeK in _cands:")
    w.depth += 1
    _emit_check_guard(w, shape, last, "continue")
    _emit_descend_loops(w, shape, "_ripK", "_beforeK",
                        kleene_binding=True)
    w.depth = 0


def _generate_check_override(w: _Writer, shape: _ScanShape) -> None:
    """Inlined construction-pushdown checks for patterns whose (Kleene)
    construction walk stays interpreted."""
    w.emit("def _passes_construction_checks(self, index, chosen):")
    w.depth += 1
    for index in range(shape.n):
        names = {shape.variables[position]: f"chosen[{position}]"
                 for position in range(index, shape.n)
                 if not shape.kleene[position]}
        condition = shape.check_sources(index, names)
        if condition is None:
            continue
        w.emit(f"if index == {index}:")
        w.depth += 1
        w.emit("try:")
        w.emit(f"    return {condition}")
        w.emit("except Exception:")
        w.emit("    return _BASE._passes_construction_checks("
               "self, index, chosen)")
        w.depth -= 1
    w.emit("return True")
    w.depth -= 1


# -- interpreted fallbacks attached to the generated class -------------------

def _filters_fallback(self: SequenceScanConstruct, index: int,
                      event: Any) -> bool:
    """Re-run component *index*'s pushed filters through the interpreted
    closures (one hoisted context), so evaluation errors surface exactly
    as the interpreter raises them."""
    context = EvalContext({self._variables[index]: event},
                          self._functions, self._system)
    for predicate in self._filters[index]:
        if not predicate(context):
            return False
    return True


# -- public entry point ------------------------------------------------------

def compile_scan(analyzed: AnalyzedQuery, *,
                 window_pushdown: bool = True,
                 partition_pushdown: bool = True,
                 filter_pushdown: bool = True,
                 construction_pushdown: bool = False,
                 kleene_maximal: bool = True,
                 max_kleene_events: int = 10,
                 prune_interval: int = 512,
                 stats: PlanStats | None = None,
                 functions: Any = None,
                 system: Any = None,
                 profiling: bool = False) -> SequenceScanConstruct | None:
    """Build a code-generated SSC operator for *analyzed*.

    Returns ``None`` when the query uses an expression shape the
    translator does not cover — the caller then instantiates the
    interpreted operator instead.
    """
    try:
        shape_source = generate_scan_source(
            analyzed, window_pushdown=window_pushdown,
            partition_pushdown=partition_pushdown,
            filter_pushdown=filter_pushdown,
            construction_pushdown=construction_pushdown,
            prune_interval=prune_interval,
            kleene_maximal=kleene_maximal, profiling=profiling)
    except UnsupportedShape:
        return None

    namespace: dict[str, Any] = {
        "Match": Match,
        "Instance": Instance,
        "StackGroup": StackGroup,
        "_NO_PARTITION": _NO_PARTITION,
        "_as_bool": _as_bool,
        "_BASE": SequenceScanConstruct,
        "_bisect_left": _bisect_left,
        "_bisect_right": _bisect_right,
    }
    exec(compile(shape_source, "<sase-codegen>", "exec"), namespace)

    members: dict[str, Any] = {
        "feed": namespace["feed"],
        "feed_batch": namespace["feed_batch"],
        "_filters_fallback": _filters_fallback,
        "compiled": True,
        "profiled": profiling,
        "generated_batch": True,
        "generated_construct": "_construct" in namespace,
        "codegen_source": shape_source,
    }
    for name in ("_construct", "_passes_construction_checks"):
        if name in namespace:
            members[name] = namespace[name]
    generated = type("CompiledSequenceScanConstruct",
                     (SequenceScanConstruct,), members)
    return generated(
        analyzed, window_pushdown=window_pushdown,
        partition_pushdown=partition_pushdown,
        filter_pushdown=filter_pushdown,
        construction_pushdown=construction_pushdown,
        kleene_maximal=kleene_maximal,
        max_kleene_events=max_kleene_events,
        prune_interval=prune_interval,
        stats=stats, functions=functions, system=system)
