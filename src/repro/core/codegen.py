"""Per-query code generation: the compiled SSC hot path.

The interpreted :class:`~repro.core.sequence.SequenceScanConstruct` walks
closure trees through per-call :class:`EvalContext` allocations and looks
up the plan shape (component count, Kleene flags, window, PAIS key) on
every event.  This module instead emits *Python source* specialised to one
analyzed query — ``compile()``/``exec``-based, not closure trees — and
builds a :class:`SequenceScanConstruct` subclass whose hot methods are the
generated functions:

* ``feed`` — the event-type dispatch is unrolled into an ``if``/``elif``
  chain; per-component admission (filter pushdown, PAIS key extraction,
  window pruning, RIP-pointer push) is straight-line code with the window,
  partition attribute, and prune interval baked in as constants.  Pushed
  single-variable filters become direct ``event.attributes[...]``
  comparisons with **zero** ``EvalContext`` allocation.
* ``_construct`` (patterns without Kleene components) — the backward DFS
  over the instance stacks is unrolled into nested ``for`` loops, one per
  component, with construction-pushdown predicates inlined as direct
  comparisons at the loop level where their variables become bound.
* ``_passes_construction_checks`` (patterns with Kleene components keep
  the inherited construction walk) — pushdown predicates are still
  inlined, only the enumeration stays generic.

Semantics parity is non-negotiable: every generated predicate runs inside
``try``/``except`` and falls back to the interpreted closure when the
straight-line evaluation raises, so missing attributes, type errors, and
division by zero surface the exact interpreter ``EvaluationError``.
Expression shapes the translator does not cover (function calls into the
``_`` library, aggregates, bare variable references) make
:func:`compile_scan` return ``None`` and the caller falls back to the
interpreter wholesale; the differential test suite proves the two paths
are bit-identical over the seed query corpus and fuzzed streams.

Known (documented) divergence: generated arithmetic trusts the analyzer's
static types, so an event whose attribute *violates its declared schema*
(e.g. a bool where the schema says INT) can be computed where the
interpreter would raise.  Schema-conforming streams behave identically.
"""

from __future__ import annotations

from typing import Any

from repro.core.expressions import EvalContext, _as_bool
from repro.core.instances import StackGroup
from repro.core.match import Match
from repro.core.sequence import SequenceScanConstruct, _NO_PARTITION
from repro.core.stats import PlanStats
from repro.lang.ast import (
    AttributeRef,
    BinaryOp,
    BinOpKind,
    Expr,
    Literal,
    UnaryOp,
    UnOpKind,
)
from repro.lang.semantics import AnalyzedQuery


class UnsupportedShape(Exception):
    """An expression or plan shape with no source translation; the caller
    must use the interpreted operator."""


# -- expression translation --------------------------------------------------

_COMPARE_OPS = {
    BinOpKind.EQ: "==",
    BinOpKind.NEQ: "!=",
    BinOpKind.LT: "<",
    BinOpKind.LTE: "<=",
    BinOpKind.GT: ">",
    BinOpKind.GTE: ">=",
}

_ARITH_OPS = {
    BinOpKind.ADD: "+",
    BinOpKind.SUB: "-",
    BinOpKind.MUL: "*",
    BinOpKind.DIV: "/",
    BinOpKind.MOD: "%",
}


def value_source(expr: Expr, names: dict[str, str]) -> str:
    """Translate *expr* to a Python expression over the event locals in
    *names* (variable name -> source of the bound Event)."""
    if isinstance(expr, Literal):
        return repr(expr.value)
    if isinstance(expr, AttributeRef):
        base = names.get(expr.variable)
        if base is None:
            raise UnsupportedShape(
                f"variable {expr.variable!r} not bound at this point")
        if expr.attribute in ("Timestamp", "timestamp"):
            return f"{base}.timestamp"
        return f"{base}.attributes[{expr.attribute!r}]"
    if isinstance(expr, UnaryOp):
        if expr.op is UnOpKind.NOT:
            return predicate_source(expr.operand, names)
        return f"(-{value_source(expr.operand, names)})"
    if isinstance(expr, BinaryOp):
        op = expr.op
        if op in _COMPARE_OPS or op.is_logical:
            return predicate_source(expr, names)
        left = value_source(expr.left, names)
        right = value_source(expr.right, names)
        return f"({left} {_ARITH_OPS[op]} {right})"
    raise UnsupportedShape(
        f"no source translation for {type(expr).__name__}")


def predicate_source(expr: Expr, names: dict[str, str]) -> str:
    """Translate a boolean expression; non-boolean-producing subtrees are
    wrapped in ``_as_bool`` so misbehaving values fail exactly like the
    interpreter."""
    if isinstance(expr, BinaryOp):
        op = expr.op
        if op is BinOpKind.AND:
            return (f"({predicate_source(expr.left, names)} and "
                    f"{predicate_source(expr.right, names)})")
        if op is BinOpKind.OR:
            return (f"({predicate_source(expr.left, names)} or "
                    f"{predicate_source(expr.right, names)})")
        if op in _COMPARE_OPS:
            return (f"({value_source(expr.left, names)} "
                    f"{_COMPARE_OPS[op]} "
                    f"{value_source(expr.right, names)})")
    if isinstance(expr, UnaryOp) and expr.op is UnOpKind.NOT:
        return f"(not {predicate_source(expr.operand, names)})"
    return f"_as_bool({value_source(expr, names)})"


# -- source assembly ---------------------------------------------------------

class _Writer:
    """Indentation-tracking line collector."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self.depth = 0

    def emit(self, text: str = "") -> None:
        self.lines.append("    " * self.depth + text if text else "")

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


class _ScanShape:
    """The plan constants the generator unrolls, derived exactly as the
    interpreted operator's constructor derives them."""

    def __init__(self, analyzed: AnalyzedQuery, *, window_pushdown: bool,
                 partition_pushdown: bool, filter_pushdown: bool,
                 construction_pushdown: bool, prune_interval: int,
                 profiling: bool = False):
        positives = analyzed.positives
        self.n = len(positives)
        self.profiling = profiling
        self.variables = [component.variable for component in positives]
        self.kleene = [component.kleene for component in positives]
        self.has_kleene = any(self.kleene)
        self.window = analyzed.window if window_pushdown else None
        self.prune_interval = max(1, prune_interval)

        self.by_type: dict[str, list[int]] = {}
        for index, component in enumerate(positives):
            if not component.event_types:  # pragma: no cover - defensive
                raise UnsupportedShape("component with no event types")
            for event_type in component.event_types:
                self.by_type.setdefault(event_type, []).append(index)
        for indexes in self.by_type.values():
            indexes.sort(reverse=True)

        self.key_attrs: list[str] | None = None
        if partition_pushdown and analyzed.partition is not None:
            attrs = [analyzed.partition.key_attribute(variable)
                     for variable in self.variables]
            if all(attr is not None for attr in attrs):
                self.key_attrs = [attr for attr in attrs
                                  if attr is not None]

        # Per-component filter sources (filter pushdown), evaluated over a
        # local named ``event``.
        self.filter_src: list[str | None] = [None] * self.n
        if filter_pushdown:
            for index, variable in enumerate(self.variables):
                sources = [predicate_source(info.expr, {variable: "event"})
                           for info in
                           analyzed.component_filters.get(variable, ())]
                if sources:
                    self.filter_src[index] = " and ".join(sources)

        # Construction-pushdown predicates grouped by trigger index (the
        # minimum component position among their variables) — mirrors the
        # interpreted constructor, including the PAIS-equality and
        # Kleene-variable exclusions.
        self.check_exprs: list[list[Expr]] = [[] for _ in range(self.n)]
        self.has_checks = False
        if construction_pushdown:
            position = {variable: index for index, variable
                        in enumerate(self.variables)}
            kleene_vars = {variable for index, variable
                           in enumerate(self.variables)
                           if self.kleene[index]}
            for info in analyzed.selection_predicates:
                if self.key_attrs is not None and \
                        info.is_partition_equality:
                    continue
                if info.variables & kleene_vars:
                    continue
                trigger = min(position[variable]
                              for variable in info.variables)
                self.check_exprs[trigger].append(info.expr)
                self.has_checks = True

    def check_sources(self, index: int,
                      names: dict[str, str]) -> str | None:
        exprs = self.check_exprs[index]
        if not exprs:
            return None
        return " and ".join(predicate_source(expr, names)
                            for expr in exprs)


def generate_scan_source(analyzed: AnalyzedQuery, *,
                         window_pushdown: bool = True,
                         partition_pushdown: bool = True,
                         filter_pushdown: bool = True,
                         construction_pushdown: bool = False,
                         prune_interval: int = 512,
                         profiling: bool = False) -> str:
    """Emit the specialised operator source for *analyzed*.

    With ``profiling`` the generated hot path includes the same
    per-component admit/construct counters the interpreted operator
    keeps; without it no profiling code is emitted at all, so the
    disabled path carries zero overhead.

    Raises :class:`UnsupportedShape` when any pushed predicate cannot be
    translated to straight-line code.
    """
    shape = _ScanShape(
        analyzed, window_pushdown=window_pushdown,
        partition_pushdown=partition_pushdown,
        filter_pushdown=filter_pushdown,
        construction_pushdown=construction_pushdown,
        prune_interval=prune_interval, profiling=profiling)
    writer = _Writer()
    _generate_feed(writer, shape)
    if not shape.has_kleene:
        writer.emit()
        _generate_construct(writer, shape)
    elif shape.has_checks:
        writer.emit()
        _generate_check_override(writer, shape)
    return writer.source()


def _generate_feed(w: _Writer, shape: _ScanShape) -> None:
    w.emit("def feed(self, event):")
    w.depth += 1
    w.emit("_op = self._op_stats")
    w.emit("_op.consumed += 1")
    if shape.profiling:
        w.emit("_prof = self._profile")
    if shape.window is not None:
        w.emit("_seen = self._events_seen + 1")
        w.emit("self._events_seen = _seen")
    else:
        # No window means _prune_all is a no-op: skip the interval
        # arithmetic entirely.
        w.emit("self._events_seen += 1")
    w.emit("matches = []")
    w.emit("_ts = event.timestamp")
    w.emit("_groups = self._groups")
    w.emit("_pushed = False")
    keyword = "if"
    for event_type, indexes in shape.by_type.items():
        w.emit(f"{keyword} event.type == {event_type!r}:")
        keyword = "elif"
        w.depth += 1
        for index in indexes:  # descending
            _generate_admit(w, shape, index)
        w.depth -= 1
    if shape.window is not None:
        w.emit(f"if _seen % {shape.prune_interval} == 0:")
        w.emit("    self._prune_all(_ts)")
    # High-water marks only move on a push (group creation implies one),
    # and a feed that pushed records *after* any interval prune — exactly
    # the interpreter's observation point.
    w.emit("if _pushed:")
    w.emit("    self._stats.record_stack_size(self._instance_count, "
           "len(_groups))")
    w.emit("    _op.produced += len(matches)")
    if shape.profiling:
        w.emit("    if _prof is not None:")
        w.emit("        _prof.matches_emitted += len(matches)")
    w.emit("return matches")
    w.depth -= 1


def _generate_admit(w: _Writer, shape: _ScanShape, index: int) -> None:
    w.emit(f"# admit into component {index} "
           f"({shape.variables[index]})")
    entry_depth = w.depth
    condition = shape.filter_src[index]
    if condition is not None:
        w.emit("try:")
        w.emit(f"    _ok = {condition}")
        w.emit("except Exception:")
        w.emit(f"    _ok = self._filters_fallback({index}, event)")
        w.emit("if _ok:")
        w.depth += 1
    if shape.key_attrs is not None:
        w.emit(f"_key = event.attributes.get({shape.key_attrs[index]!r})")
        w.emit("if _key is not None:")
        w.depth += 1
        key_src = "_key"
    else:
        key_src = "_NO_PARTITION"
    w.emit(f"_group = _groups.get({key_src})")
    if index == 0:
        w.emit("if _group is None:")
        w.emit(f"    _group = StackGroup({shape.n})")
        w.emit(f"    _groups[{key_src}] = _group")
        if shape.window is not None:
            w.emit("else:")
            w.emit("    self._instance_count -= _group.prune_before("
                   f"_ts - {shape.window!r})")
        w.emit("_inst = _group.stacks[0].push(event, -1)")
        w.emit("self._instance_count += 1")
        w.emit("_pushed = True")
        if shape.profiling:
            w.emit("if _prof is not None:")
            w.emit("    _prof.admits[0] += 1")
        if shape.n == 1:
            w.emit("self._construct(_group, _inst, matches)")
    else:
        w.emit("if _group is not None:")
        w.depth += 1
        if shape.window is not None:
            w.emit("self._instance_count -= _group.prune_before("
                   f"_ts - {shape.window!r})")
        w.emit(f"_prev = _group.stacks[{index - 1}]")
        w.emit("_plen = len(_prev)")
        w.emit("if _plen != 0:")
        w.depth += 1
        w.emit("_last = _prev.last_absolute_index")
        w.emit("_first = _prev.get_absolute(_last - _plen + 1)")
        w.emit("if _first.event.timestamp < _ts:")
        w.depth += 1
        w.emit(f"_inst = _group.stacks[{index}].push(event, _last)")
        w.emit("self._instance_count += 1")
        w.emit("_pushed = True")
        if shape.profiling:
            w.emit("if _prof is not None:")
            w.emit(f"    _prof.admits[{index}] += 1")
        if index == shape.n - 1:
            w.emit("self._construct(_group, _inst, matches)")
    w.depth = entry_depth


def _construct_names(shape: _ScanShape, bound_from: int) -> dict[str, str]:
    """Variable -> local name map for construction-check translation when
    positions ``bound_from .. n-1`` are bound to ``_e<i>`` locals."""
    return {shape.variables[position]: f"_e{position}"
            for position in range(bound_from, shape.n)}


def _emit_check_guard(w: _Writer, shape: _ScanShape, index: int,
                      on_fail: str) -> None:
    """Inline the construction-pushdown predicates triggered at *index*,
    falling back to the interpreted check (which re-raises exactly) when
    the straight-line evaluation raises."""
    condition = shape.check_sources(index, _construct_names(shape, index))
    if condition is None:
        return
    padding = ", ".join(["None"] * index
                        + [f"_e{position}"
                           for position in range(index, shape.n)])
    w.emit("try:")
    w.emit(f"    _ok = {condition}")
    w.emit("except Exception:")
    w.emit(f"    _ok = _BASE._passes_construction_checks("
           f"self, {index}, ({padding},))")
    w.emit("if not _ok:")
    w.emit(f"    {on_fail}")


def _generate_construct(w: _Writer, shape: _ScanShape) -> None:
    """The backward DFS unrolled into nested loops (non-Kleene patterns).

    Loop nesting binds components ``n-2 .. 0`` exactly like the
    interpreted ``_descend`` recursion, so the emitted match order is
    identical."""
    n = shape.n
    last = n - 1
    w.emit("def _construct(self, group, trigger, matches):")
    w.depth += 1
    if shape.profiling:
        w.emit("_prof = self._profile")
        w.emit("if _prof is not None:")
        w.emit("    _prof.construct_calls += 1")
    w.emit("_stacks = group.stacks")
    w.emit(f"_e{last} = trigger.event")
    w.emit(f"_end = _e{last}.timestamp")
    if shape.window is not None:
        w.emit(f"_min = _end - {shape.window!r}")
    else:
        w.emit("_min = None")
    _emit_check_guard(w, shape, last, "return")
    rip_src, before_src = "trigger.rip", "_end"
    for index in range(n - 2, -1, -1):
        w.emit(f"_stack{index} = _stacks[{index}]")
        w.emit(f"for _a{index} in _stack{index}.candidate_range("
               f"{rip_src}, {before_src}, _min):")
        w.depth += 1
        w.emit(f"_i{index} = _stack{index}.get_absolute(_a{index})")
        w.emit(f"_e{index} = _i{index}.event")
        _emit_check_guard(w, shape, index, "continue")
        rip_src, before_src = f"_i{index}.rip", f"_e{index}.timestamp"
    bindings = ", ".join(
        f"{shape.variables[position]!r}: _e{position}"
        for position in range(n))
    w.emit(f"matches.append(Match({{{bindings}}}, _e0.timestamp, _end))")
    w.depth = 0


def _generate_check_override(w: _Writer, shape: _ScanShape) -> None:
    """Inlined construction-pushdown checks for patterns whose (Kleene)
    construction walk stays interpreted."""
    w.emit("def _passes_construction_checks(self, index, chosen):")
    w.depth += 1
    for index in range(shape.n):
        names = {shape.variables[position]: f"chosen[{position}]"
                 for position in range(index, shape.n)
                 if not shape.kleene[position]}
        condition = shape.check_sources(index, names)
        if condition is None:
            continue
        w.emit(f"if index == {index}:")
        w.depth += 1
        w.emit("try:")
        w.emit(f"    return {condition}")
        w.emit("except Exception:")
        w.emit("    return _BASE._passes_construction_checks("
               "self, index, chosen)")
        w.depth -= 1
    w.emit("return True")
    w.depth -= 1


# -- interpreted fallbacks attached to the generated class -------------------

def _filters_fallback(self: SequenceScanConstruct, index: int,
                      event: Any) -> bool:
    """Re-run component *index*'s pushed filters through the interpreted
    closures (one hoisted context), so evaluation errors surface exactly
    as the interpreter raises them."""
    context = EvalContext({self._variables[index]: event},
                          self._functions, self._system)
    for predicate in self._filters[index]:
        if not predicate(context):
            return False
    return True


# -- public entry point ------------------------------------------------------

def compile_scan(analyzed: AnalyzedQuery, *,
                 window_pushdown: bool = True,
                 partition_pushdown: bool = True,
                 filter_pushdown: bool = True,
                 construction_pushdown: bool = False,
                 kleene_maximal: bool = True,
                 max_kleene_events: int = 10,
                 prune_interval: int = 512,
                 stats: PlanStats | None = None,
                 functions: Any = None,
                 system: Any = None,
                 profiling: bool = False) -> SequenceScanConstruct | None:
    """Build a code-generated SSC operator for *analyzed*.

    Returns ``None`` when the query uses an expression shape the
    translator does not cover — the caller then instantiates the
    interpreted operator instead.
    """
    try:
        source = generate_scan_source(
            analyzed, window_pushdown=window_pushdown,
            partition_pushdown=partition_pushdown,
            filter_pushdown=filter_pushdown,
            construction_pushdown=construction_pushdown,
            prune_interval=prune_interval, profiling=profiling)
    except UnsupportedShape:
        return None

    namespace: dict[str, Any] = {
        "Match": Match,
        "StackGroup": StackGroup,
        "_NO_PARTITION": _NO_PARTITION,
        "_as_bool": _as_bool,
        "_BASE": SequenceScanConstruct,
    }
    exec(compile(source, "<sase-codegen>", "exec"), namespace)

    members: dict[str, Any] = {
        "feed": namespace["feed"],
        "_filters_fallback": _filters_fallback,
        "compiled": True,
        "profiled": profiling,
        "codegen_source": source,
    }
    for name in ("_construct", "_passes_construction_checks"):
        if name in namespace:
            members[name] = namespace[name]
    generated = type("CompiledSequenceScanConstruct",
                     (SequenceScanConstruct,), members)
    return generated(
        analyzed, window_pushdown=window_pushdown,
        partition_pushdown=partition_pushdown,
        filter_pushdown=filter_pushdown,
        construction_pushdown=construction_pushdown,
        kleene_maximal=kleene_maximal,
        max_kleene_events=max_kleene_events,
        prune_interval=prune_interval,
        stats=stats, functions=functions, system=system)
