"""Query runtime: one live instance of a query plan over a stream.

A :class:`QueryRuntime` is the unit the complex event processor registers
per continuous query.  ``feed`` pushes one event through the dataflow and
returns the composite events it produced; ``flush`` ends the stream
(releasing trailing-negation matches).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.core.codegen import compile_scan
from repro.core.operators import (
    KleeneFilter,
    Negation,
    Selection,
    Transformation,
    WindowFilter,
)
from repro.core.plan import KleeneMode, QueryPlan
from repro.core.sequence import SequenceScanConstruct
from repro.core.stats import PlanStats
from repro.events.event import CompositeEvent, Event
from repro.core.match import Match


class _RawMatches:
    """Identity stand-in for the Transformation operator: pass raw
    :class:`Match` objects through instead of evaluating RETURN."""

    @staticmethod
    def process(match: Match) -> Match:
        return match


class QueryRuntime:
    """Executable dataflow for one query plan."""

    def __init__(self, plan: QueryPlan, functions: Any = None,
                 system: Any = None, raw_matches: bool = False):
        self.plan = plan
        self.stats = PlanStats()
        analyzed = plan.analyzed
        config = plan.config

        scan_kwargs = dict(
            window_pushdown=config.window_pushdown,
            partition_pushdown=config.partition_pushdown,
            filter_pushdown=config.filter_pushdown,
            construction_pushdown=config.construction_pushdown,
            kleene_maximal=config.kleene_mode is KleeneMode.MAXIMAL,
            max_kleene_events=config.max_kleene_events,
            prune_interval=config.prune_interval,
            stats=self.stats, functions=functions, system=system)
        # Kept for enable_profiling, which regenerates the compiled scan
        # with profiling hooks emitted into the source.
        self._analyzed = analyzed
        self._scan_kwargs = scan_kwargs
        self._scan = compile_scan(analyzed, **scan_kwargs) \
            if config.use_codegen else None
        if self._scan is None:  # flag off, or shape codegen doesn't cover
            self._scan = SequenceScanConstruct(analyzed, **scan_kwargs)

        self._selection = Selection(
            analyzed,
            skip_partition_equalities=plan.uses_partition,
            include_component_filters=not config.filter_pushdown,
            include_cross_predicates=not config.construction_pushdown,
            stats=self.stats, functions=functions, system=system) \
            if plan.needs_selection else None
        self._window = WindowFilter(analyzed.window, stats=self.stats) \
            if plan.needs_window_filter else None
        self._kleene = KleeneFilter(
            analyzed, maximal_mode=config.kleene_mode is KleeneMode.MAXIMAL,
            stats=self.stats, functions=functions, system=system) \
            if plan.needs_kleene_filter else None
        self._negation = Negation(
            analyzed, use_partition_index=plan.uses_partition,
            stats=self.stats, functions=functions, system=system) \
            if plan.needs_negation else None
        # raw_matches: skip the RETURN clause and emit Match objects.
        # The shared-plan runtime (repro.core.shared) uses this to run one
        # match pipeline for a whole group of queries, applying each
        # member's own Transformation as its continuation.
        self._transformation = _RawMatches() if raw_matches else \
            Transformation(analyzed, stats=self.stats,
                           functions=functions, system=system)
        self._flushed = False

    # -- streaming interface -------------------------------------------------

    def feed(self, event: Event) -> list[CompositeEvent]:
        """Push one event through the plan."""
        if self._flushed:
            raise RuntimeError("runtime already flushed; create a new one")
        self.stats.events_consumed += 1
        outputs: list[CompositeEvent] = []

        if self._negation is not None:
            self._negation.observe(event)
            for match in self._negation.advance(event.timestamp):
                outputs.append(self._transformation.process(match))

        for match in self._scan.feed(event):
            survivor = self._apply_filters(match)
            if survivor is None:
                continue
            if self._negation is not None:
                survivor = self._negation.process(survivor)
                if survivor is None:
                    continue  # rejected or buffered for trailing negation
            outputs.append(self._transformation.process(survivor))

        self.stats.results_emitted += len(outputs)
        return outputs

    def feed_batch(self, events: list[Event]) -> list[CompositeEvent]:
        """Push a batch of events through the plan in one call.

        Result-identical to feeding the events one by one (the scan's
        batch loop preserves per-event effects exactly); plans with a
        negation operator interleave observe/advance per event and so
        fall back to the per-event path internally.
        """
        if self._flushed:
            raise RuntimeError("runtime already flushed; create a new one")
        if self._negation is not None:
            outputs: list[CompositeEvent] = []
            for event in events:
                outputs.extend(self.feed(event))
            return outputs
        self.stats.events_consumed += len(events)
        outputs = []
        for match in self._scan.feed_batch(events):
            survivor = self._apply_filters(match)
            if survivor is None:
                continue
            outputs.append(self._transformation.process(survivor))
        self.stats.results_emitted += len(outputs)
        return outputs

    def feed_batch_grouped(
            self, events: list[Event]) -> list[list[CompositeEvent]]:
        """Like :meth:`feed_batch` but returns one result list per input
        event, for callers that must re-associate outputs with their
        originating event (sharding workers, cascade delivery)."""
        if self._flushed:
            raise RuntimeError("runtime already flushed; create a new one")
        if self._negation is not None:
            return [self.feed(event) for event in events]
        self.stats.events_consumed += len(events)
        bounds: list[int] = []
        matches = self._scan.feed_batch(events, bounds)
        grouped: list[list[CompositeEvent]] = []
        start = 0
        emitted = 0
        for stop in bounds:
            outputs: list[CompositeEvent] = []
            for match in matches[start:stop]:
                survivor = self._apply_filters(match)
                if survivor is None:
                    continue
                outputs.append(self._transformation.process(survivor))
            emitted += len(outputs)
            grouped.append(outputs)
            start = stop
        self.stats.results_emitted += emitted
        return grouped

    def advance(self, watermark: float) -> list[CompositeEvent]:
        """Advance stream time without consuming an event.

        The sharded runtime broadcasts watermark ticks to shards that did
        not receive an event so their pending trailing-negation matches
        are released at the same stream time as a single-process run.
        """
        if self._flushed:
            raise RuntimeError("runtime already flushed; create a new one")
        if self._negation is None:
            return []
        outputs = [self._transformation.process(match)
                   for match in self._negation.advance(watermark)]
        self.stats.results_emitted += len(outputs)
        return outputs

    def flush(self) -> list[CompositeEvent]:
        """End the stream: decide every pending trailing negation."""
        self._flushed = True
        outputs: list[CompositeEvent] = []
        if self._negation is not None:
            for match in self._negation.flush():
                outputs.append(self._transformation.process(match))
        self.stats.results_emitted += len(outputs)
        return outputs

    def run(self, events: Iterable[Event]) -> Iterator[CompositeEvent]:
        """Convenience: feed a whole stream, then flush."""
        for event in events:
            yield from self.feed(event)
        yield from self.flush()

    @property
    def flushed(self) -> bool:
        """True once the stream has ended for this runtime."""
        return self._flushed

    # -- internals -----------------------------------------------------------

    def _apply_filters(self, match: Match) -> Match | None:
        if self._selection is not None:
            result = self._selection.process(match)
            if result is None:
                return None
            match = result
        if self._window is not None:
            result = self._window.process(match)
            if result is None:
                return None
            match = result
        if self._kleene is not None:
            result = self._kleene.process(match)
            if result is None:
                return None
            match = result
        return match

    # -- observability ---------------------------------------------------------

    @property
    def scan_compiled(self) -> bool:
        """True when the sequence scan runs code-generated (not
        interpreted) — see :mod:`repro.core.codegen`."""
        return self._scan.compiled

    @property
    def scan_coverage(self) -> dict[str, bool]:
        """Which scan layers run generated code vs interpreted fallback:
        ``compiled`` (the feed path), ``construct`` (the sequence
        construction walk), ``batch`` (the batch loop)."""
        return {
            "compiled": bool(self._scan.compiled),
            "construct": bool(self._scan.generated_construct),
            "batch": bool(self._scan.generated_batch),
        }

    @property
    def stack_instances(self) -> int:
        return self._scan.instance_count

    @property
    def partitions(self) -> int:
        return self._scan.partition_count

    @property
    def pending_negations(self) -> int:
        return self._negation.pending_count if self._negation else 0

    @property
    def scan_profile(self):
        """The active scan profile, or None until enabled."""
        return self._scan.profile

    def enable_profiling(self):
        """Turn on per-component scan counters for this runtime.

        The compiled scan omits profiling code entirely (the disabled
        path stays byte-identical to the unprofiled source), so enabling
        rebuilds it with the hooks emitted.  The scan's state cannot be
        carried across a rebuild, so this must precede the first event.
        """
        if self.stats.events_consumed:
            raise RuntimeError(
                "profiling must be enabled before the first event is fed")
        if self._scan.compiled and not self._scan.profiled:
            rebuilt = compile_scan(self._analyzed, profiling=True,
                                   **self._scan_kwargs)
            if rebuilt is not None:
                self._scan = rebuilt
        return self._scan.enable_profiling()
