"""The relational-style operators a SASE plan pipes sequences through.

Sequence scan/construction emits candidate :class:`~repro.core.match.Match`
objects; these operators implement the rest of the event matching block and
the RETURN clause:

* :class:`Selection` — the WHERE clause's parameterized predicates;
* :class:`WindowFilter` — the WITHIN clause (a no-op safety net when the
  window was pushed into the scan);
* :class:`KleeneFilter` — per-event predicates over Kleene bindings;
* :class:`Negation` — non-occurrence checks against an indexed history of
  negative events, with delayed emission for trailing negation;
* :class:`Transformation` — evaluates RETURN items into composite events.
"""

from __future__ import annotations

import math
from typing import Any, Callable

from repro.core.expressions import EvalContext, compile_expr, \
    compile_predicate
from repro.core.match import Match
from repro.core.stats import PlanStats
from repro.events.event import CompositeEvent, Event
from repro.indexes import Interval, PartitionedTimeIndex, TimeIndex
from repro.lang.semantics import AnalyzedQuery, PredicateInfo


class Selection:
    """Filter matches by the parameterized (multi-variable) predicates.

    Predicates implied by an enforced partition scheme are skipped (the
    partitioned scan already guarantees them); the plan builder passes
    ``skip_partition_equalities`` accordingly.
    """

    def __init__(self, analyzed: AnalyzedQuery, *,
                 skip_partition_equalities: bool,
                 include_component_filters: bool = False,
                 include_cross_predicates: bool = True,
                 stats: PlanStats | None = None,
                 functions: Any = None, system: Any = None):
        predicates: list[PredicateInfo] = []
        if include_cross_predicates:
            for info in analyzed.selection_predicates:
                if skip_partition_equalities and \
                        info.is_partition_equality:
                    continue
                predicates.append(info)
        if include_component_filters:
            for infos in analyzed.component_filters.values():
                predicates.extend(infos)
        self._predicates = [compile_predicate(info.expr)
                            for info in predicates]
        self.predicate_count = len(self._predicates)
        self._functions = functions
        self._system = system
        self._stats = (stats or PlanStats()).operator("SL")

    def process(self, match: Match) -> Match | None:
        self._stats.consumed += 1
        if self._predicates:
            context = EvalContext(match.bindings, self._functions,
                                  self._system)
            for predicate in self._predicates:
                if not predicate(context):
                    return None
        self._stats.produced += 1
        return match


class WindowFilter:
    """Enforce ``end - start <= window``."""

    def __init__(self, window: float, stats: PlanStats | None = None):
        self._window = window
        self._stats = (stats or PlanStats()).operator("WD")

    def process(self, match: Match) -> Match | None:
        self._stats.consumed += 1
        if match.span > self._window:
            return None
        self._stats.produced += 1
        return match


class KleeneFilter:
    """Apply per-event WHERE predicates over Kleene bindings.

    A predicate like ``d.Price > a.Price`` (``d`` Kleene) must hold for the
    events bound to ``d``.  In maximal mode the binding is *trimmed* to the
    qualifying events (the binding is defined as "the qualifying events in
    the interval"); a binding left empty drops the match.  In subset mode a
    failing event drops the whole match — the subset without it is
    enumerated separately, so trimming would create duplicates.
    """

    def __init__(self, analyzed: AnalyzedQuery, *, maximal_mode: bool,
                 stats: PlanStats | None = None,
                 functions: Any = None, system: Any = None):
        self._per_var: dict[str, list[Callable[[EvalContext], bool]]] = {}
        for variable, infos in analyzed.kleene_predicates.items():
            if infos:
                self._per_var[variable] = [compile_predicate(info.expr)
                                           for info in infos]
        self._maximal = maximal_mode
        self._functions = functions
        self._system = system
        self._stats = (stats or PlanStats()).operator("KF")

    @property
    def is_trivial(self) -> bool:
        return not self._per_var

    def process(self, match: Match) -> Match | None:
        self._stats.consumed += 1
        current = match
        for variable, predicates in self._per_var.items():
            binding = current.bindings[variable]
            assert isinstance(binding, tuple)
            kept: list[Event] = []
            for event in binding:
                context = EvalContext(
                    current.bindings, self._functions,
                    self._system).rebind(variable, event)
                if all(predicate(context) for predicate in predicates):
                    kept.append(event)
            if len(kept) == len(binding):
                continue
            if not self._maximal or not kept:
                return None
            current = current.replace_binding(variable, tuple(kept))
        self._stats.produced += 1
        return current


# How many observed negative events between history prunes.
_NEG_PRUNE_INTERVAL = 512


class _NegationCheck:
    """Everything needed to check one negated component.

    The negative-event history is a temporal index (partitioned by the
    equality-class key when one is available), per the paper's "indexing
    relevant events both in temporal order and across value-based
    partitions".
    """

    __slots__ = ("variable", "event_types", "prev_index", "next_index",
                 "local_filters", "cross_predicates", "key_attr", "history")

    def __init__(self, variable: str, event_types: tuple[str, ...],
                 prev_index: int, next_index: int,
                 local_filters: list[Callable[[EvalContext], bool]],
                 cross_predicates: list[Callable[[EvalContext], bool]],
                 key_attr: str | None):
        self.variable = variable
        self.event_types = event_types
        self.prev_index = prev_index
        self.next_index = next_index
        self.local_filters = local_filters
        self.cross_predicates = cross_predicates
        self.key_attr = key_attr
        self.history: TimeIndex | PartitionedTimeIndex
        if key_attr is not None:
            self.history = PartitionedTimeIndex(key_attr)
        else:
            self.history = TimeIndex()


class Negation:
    """The negation operator.

    Maintains a time-ordered history of candidate negative events per
    negated component (partitioned by the equality-class key when one is
    available).  Middle and leading negation are decided the moment a match
    arrives — every event that could violate them has already been seen.
    Trailing negation buffers the match until the stream time passes
    ``start + window`` (its non-occurrence interval closes), then decides.
    """

    def __init__(self, analyzed: AnalyzedQuery, *,
                 use_partition_index: bool,
                 stats: PlanStats | None = None,
                 functions: Any = None, system: Any = None):
        self._functions = functions
        self._system = system
        self._window = analyzed.window
        self._positives = analyzed.positives
        self._stats = (stats or PlanStats()).operator("NG")
        self._checks: list[_NegationCheck] = []
        self._pending: list[tuple[float, Match]] = []  # (deadline, match)
        self._watermark = -math.inf
        self._observed_since_prune = 0

        partition = analyzed.partition if use_partition_index else None
        for component, prev_index, next_index in analyzed.negation_layout():
            local: list[Callable[[EvalContext], bool]] = []
            cross: list[Callable[[EvalContext], bool]] = []
            for info in analyzed.negation_predicates[component.variable]:
                if partition is not None and info.is_partition_equality:
                    continue  # enforced by the partitioned history index
                compiled = compile_predicate(info.expr)
                if info.variables == {component.variable}:
                    local.append(compiled)
                else:
                    cross.append(compiled)
            key_attr = None
            if partition is not None:
                key_attr = partition.key_attribute(component.variable)
            self._checks.append(_NegationCheck(
                component.variable, component.event_types,
                prev_index, next_index, local, cross, key_attr))
        self._types = {event_type for check in self._checks
                       for event_type in check.event_types}
        # the partition attribute of some positive variable, used to compute
        # a match's key when looking up a partitioned history
        self._match_key_var: str | None = None
        self._match_key_attr: str | None = None
        if partition is not None:
            for component in analyzed.positives:
                attr = partition.key_attribute(component.variable)
                if attr is not None:
                    self._match_key_var = component.variable
                    self._match_key_attr = attr
                    break

    @property
    def has_trailing(self) -> bool:
        return any(check.next_index == len(self._positives)
                   for check in self._checks)

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    # -- stream side ---------------------------------------------------------

    def observe(self, event: Event) -> None:
        """Record a stream event into the negative-event histories."""
        if event.type not in self._types:
            return
        for check in self._checks:
            if event.type not in check.event_types:
                continue
            if check.local_filters:
                context = EvalContext({check.variable: event},
                                      self._functions, self._system)
                if not all(predicate(context)
                           for predicate in check.local_filters):
                    continue
            check.history.append(event)
        self._observed_since_prune += 1
        if self._window is not None and \
                self._observed_since_prune >= _NEG_PRUNE_INTERVAL:
            self._observed_since_prune = 0
            # A candidate interval never reaches below end - 2W (leading
            # negation looks back W from the match end; pending trailing
            # matches look forward from ends at least W ago).
            horizon = event.timestamp - 2 * self._window
            for check in self._checks:
                check.history.prune_before(horizon)

    def advance(self, watermark: float) -> list[Match]:
        """Move stream time forward; release trailing-negation matches
        whose interval has fully closed."""
        self._watermark = watermark
        if not self._pending:
            return []
        released: list[Match] = []
        remaining: list[tuple[float, Match]] = []
        for deadline, match in self._pending:
            if watermark > deadline:
                if self._passes_trailing(match):
                    released.append(match)
                    self._stats.produced += 1
            else:
                remaining.append((deadline, match))
        self._pending = remaining
        return released

    def flush(self) -> list[Match]:
        """End of stream: every still-pending match's interval can no longer
        receive events, so decide all of them now."""
        released = [match for _, match in self._pending
                    if self._passes_trailing(match)]
        self._stats.produced += len(released)
        self._pending.clear()
        return released

    # -- match side ----------------------------------------------------------

    def process(self, match: Match) -> Match | None:
        """Check a candidate match.  Returns the match when it passes every
        immediately-decidable negation; returns None when it is rejected
        *or buffered* (buffered matches come back through ``advance`` /
        ``flush``)."""
        self._stats.consumed += 1
        deadline: float | None = None
        for check in self._checks:
            if check.next_index == len(self._positives):
                this_deadline = (match.start + self._window
                                 if self._window is not None else math.inf)
                if self._watermark > this_deadline:
                    if self._violated(check, match):
                        return None
                else:
                    deadline = this_deadline if deadline is None \
                        else max(deadline, this_deadline)
            elif self._violated(check, match):
                return None
        if deadline is not None:
            self._pending.append((deadline, match))
            return None
        self._stats.produced += 1
        return match

    def _passes_trailing(self, match: Match) -> bool:
        for check in self._checks:
            if check.next_index == len(self._positives) and \
                    self._violated(check, match):
                return False
        return True

    def _violated(self, check: _NegationCheck, match: Match) -> bool:
        interval = self._interval(check, match)
        history = self._history_for(check, match)
        if history is None:
            return False
        if not check.cross_predicates:
            return history.exists(interval)
        base = EvalContext(match.bindings, self._functions, self._system)
        for candidate in history.range(interval):
            context = base.rebind(check.variable, candidate)
            if all(predicate(context)
                   for predicate in check.cross_predicates):
                return True
        return False

    def _interval(self, check: _NegationCheck, match: Match) -> Interval:
        n_positives = len(self._positives)
        if check.prev_index < 0:  # leading negation
            low = (match.end - self._window
                   if self._window is not None else -math.inf)
            return Interval(low, self._positive_ts(match, 0, first=True),
                            low_inclusive=True, high_inclusive=False)
        if check.next_index >= n_positives:  # trailing negation
            high = (match.start + self._window
                    if self._window is not None else math.inf)
            return Interval(
                self._positive_ts(match, n_positives - 1, first=False),
                high, low_inclusive=False, high_inclusive=True)
        return Interval(
            self._positive_ts(match, check.prev_index, first=False),
            self._positive_ts(match, check.next_index, first=True),
            low_inclusive=False, high_inclusive=False)

    def _positive_ts(self, match: Match, index: int, first: bool) -> float:
        binding = match.bindings[self._positives[index].variable]
        if isinstance(binding, tuple):
            return binding[0].timestamp if first else binding[-1].timestamp
        return binding.timestamp

    def _history_for(self, check: _NegationCheck,
                     match: Match) -> TimeIndex | None:
        if check.key_attr is None:
            assert isinstance(check.history, TimeIndex)
            return check.history
        assert isinstance(check.history, PartitionedTimeIndex)
        assert self._match_key_var is not None
        assert self._match_key_attr is not None
        binding = match.bindings[self._match_key_var]
        anchor = binding[0] if isinstance(binding, tuple) else binding
        key = anchor.attributes.get(self._match_key_attr)
        return check.history.partition(key)


class Transformation:
    """Evaluate the RETURN clause: matches to composite events."""

    def __init__(self, analyzed: AnalyzedQuery,
                 stats: PlanStats | None = None,
                 functions: Any = None, system: Any = None):
        self._items = [(item.name, compile_expr(item.expr))
                       for item in analyzed.return_items]
        self._output_type = analyzed.output_type
        self._output_stream = analyzed.output_stream
        self._functions = functions
        self._system = system
        self._stats = (stats or PlanStats()).operator("TF")

    def process(self, match: Match) -> CompositeEvent:
        self._stats.consumed += 1
        context = EvalContext(match.bindings, self._functions, self._system)
        attributes = {name: closure(context)
                      for name, closure in self._items}
        self._stats.produced += 1
        return CompositeEvent(self._output_type, attributes, match.bindings,
                              match.start, match.end,
                              stream=self._output_stream)
