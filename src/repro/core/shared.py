"""Shared-plan optimization: evaluate one match pipeline for many queries.

In a multi-tenant deployment most registered queries are instances of a
few templates — the same EVENT/WHERE/WITHIN pattern, differing (at most)
in their RETURN clauses.  Kolchinsky & Schuster's CEP join-optimization
survey identifies multi-query sharing as the central scaling lever: the
expensive part of a query (the NFA sequence scan, the pushed predicates,
negation bookkeeping) is identical across such instances, so evaluating
it once and fanning the matches out to per-query continuations turns an
O(tenants) per-event cost into O(templates).

This module implements that sharing behind :class:`SharedPlanConfig`:

* :func:`plan_signature` canonicalizes a compiled query's *match plan* —
  every component, pushed predicate, selection/negation/Kleene predicate,
  the window, the partition scheme, and the plan switches — with pattern
  variables renamed positionally so ``SEQ(A x, B y)`` and ``SEQ(A p, B q)``
  share.  The RETURN clause is deliberately excluded: it is the per-query
  continuation.
* :class:`SharedGroup` owns one raw-match :class:`~repro.core.runtime
  .QueryRuntime` (the Transformation operator replaced by a pass-through)
  and memoizes its output per feed/advance/flush round.
* :class:`SharedMemberRuntime` is the per-query view the processor holds:
  it quacks like a ``QueryRuntime`` but delegates match production to the
  group and applies only its own RETURN clause.

Sharing is safe exactly because the continuation is applied per member in
the member's registration order — the delivered result stream is
bit-identical to independent evaluation (the differential tests assert
this).  Queries whose predicates call external functions are excluded by
default: a function may read mutable system state (the event database),
and collapsing N evaluations into one could observe it at a different
point in the delivery order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.match import Match
from repro.core.operators import Transformation
from repro.core.runtime import QueryRuntime
from repro.events.event import CompositeEvent, Event
from repro.lang.ast import (
    AggregateCall,
    AttributeRef,
    BinaryOp,
    Expr,
    FunctionCall,
    Literal,
    UnaryOp,
    VariableRef,
)
from repro.lang.semantics import AnalyzedQuery, PredicateInfo


@dataclass(frozen=True)
class SharedPlanConfig:
    """Switches for multi-query shared-plan evaluation.

    ``share_function_queries`` opts queries with external function calls
    in their WHERE clause into sharing; leave it off unless every such
    function is pure (see module docstring).
    """

    enabled: bool = True
    share_function_queries: bool = False


# -- canonical signatures ----------------------------------------------------

def _render(expr: Expr, rename: dict[str, str]) -> str:
    """Canonical text for *expr* with pattern variables renamed."""
    if isinstance(expr, Literal):
        return repr(expr.value)
    if isinstance(expr, AttributeRef):
        return f"{rename.get(expr.variable, expr.variable)}" \
               f".{expr.attribute}"
    if isinstance(expr, VariableRef):
        return rename.get(expr.name, expr.name)
    if isinstance(expr, BinaryOp):
        return f"({_render(expr.left, rename)} {expr.op.value} " \
               f"{_render(expr.right, rename)})"
    if isinstance(expr, UnaryOp):
        return f"({expr.op.value} {_render(expr.operand, rename)})"
    if isinstance(expr, FunctionCall):
        args = ", ".join(_render(arg, rename) for arg in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, AggregateCall):
        inner = "*" if expr.arg is None else _render(expr.arg, rename)
        return f"{expr.kind.value}({inner})"
    raise TypeError(f"unknown expression node {type(expr).__name__}")


def _calls_functions(expr: Expr) -> bool:
    if isinstance(expr, FunctionCall):
        return True
    if isinstance(expr, BinaryOp):
        return _calls_functions(expr.left) or _calls_functions(expr.right)
    if isinstance(expr, UnaryOp):
        return _calls_functions(expr.operand)
    if isinstance(expr, AggregateCall):
        return expr.arg is not None and _calls_functions(expr.arg)
    return False


def _predicate_block(infos: list[PredicateInfo],
                     rename: dict[str, str]) -> tuple[str, ...]:
    return tuple(_render(info.expr, rename) for info in infos)


def plan_signature(analyzed: AnalyzedQuery, config: Any,
                   shared: SharedPlanConfig) -> tuple | None:
    """The canonical match-plan identity of a query, or None when the
    query must not be shared.  Two queries with equal signatures produce
    identical pre-RETURN match streams over any input."""
    all_predicates: list[PredicateInfo] = \
        list(analyzed.selection_predicates)
    for infos in analyzed.component_filters.values():
        all_predicates.extend(infos)
    for infos in analyzed.negation_predicates.values():
        all_predicates.extend(infos)
    for infos in analyzed.kleene_predicates.values():
        all_predicates.extend(infos)
    if not shared.share_function_queries and \
            any(_calls_functions(info.expr) for info in all_predicates):
        return None

    rename = {component.variable: f"v{index}"
              for index, component in enumerate(analyzed.components)}
    components = tuple(
        (component.event_type, tuple(component.alt_types),
         component.negated, component.kleene, rename[component.variable])
        for component in analyzed.components)
    filters = tuple(
        (rename[variable], _predicate_block(infos, rename))
        for variable, infos in sorted(
            analyzed.component_filters.items(),
            key=lambda item: rename[item[0]]))
    negations = tuple(
        (rename[variable], _predicate_block(infos, rename))
        for variable, infos in sorted(
            analyzed.negation_predicates.items(),
            key=lambda item: rename[item[0]]))
    kleenes = tuple(
        (rename[variable], _predicate_block(infos, rename))
        for variable, infos in sorted(
            analyzed.kleene_predicates.items(),
            key=lambda item: rename[item[0]]))
    partition = None
    if analyzed.partition is not None:
        partition = tuple(sorted(
            (rename[variable], attribute) for variable, attribute
            in analyzed.partition.attr_by_var.items()))
    plan_knobs = (config.window_pushdown, config.partition_pushdown,
                  config.filter_pushdown, config.construction_pushdown,
                  config.kleene_mode.value, config.max_kleene_events,
                  config.prune_interval, config.use_codegen)
    return (analyzed.query.from_stream, components, analyzed.window,
            filters, _predicate_block(analyzed.selection_predicates,
                                      rename),
            negations, kleenes, partition, plan_knobs)


# -- the shared runtime ------------------------------------------------------

class SharedGroup:
    """One raw-match pipeline serving every member of a signature group.

    The group memoizes the pipeline's output per *round*: the first
    member the processor feeds in a dispatch round runs the pipeline,
    every other member reuses the cached matches and pays only its own
    RETURN clause.  Rounds are keyed by event identity for ``feed`` and
    by watermark value for ``advance``; a member that re-appears under an
    unchanged key starts a new round (the pipeline is monotone, so a
    repeated ``advance`` at the same watermark yields the empty list both
    shared and independent).
    """

    def __init__(self, signature: tuple, pipeline: QueryRuntime):
        self.signature = signature
        self.pipeline = pipeline
        self.members: dict[str, SharedMemberRuntime] = {}
        self._kind: str | None = None
        self._key: Any = None
        self._cached: list = []
        self._consumed: set[str] = set()

    @property
    def events_consumed(self) -> int:
        return self.pipeline.stats.events_consumed

    @property
    def joinable(self) -> bool:
        """A query may only join before the pipeline has state: a member
        added later would see matches rooted in events that predate its
        own registration, which independent evaluation never produces."""
        return self.events_consumed == 0 and not self.pipeline.flushed

    def add_member(self, name: str, analyzed: AnalyzedQuery,
                   functions: Any = None,
                   system: Any = None) -> "SharedMemberRuntime":
        member = SharedMemberRuntime(self, name, analyzed,
                                     functions=functions, system=system)
        self.members[name] = member
        return member

    def remove_member(self, name: str) -> None:
        self.members.pop(name, None)
        self._consumed.discard(name)

    def _matches(self, member: str, kind: str, key: Any) -> list:
        stale = (self._kind != kind
                 or member in self._consumed
                 or (self._key is not key if kind == "feed"
                     else self._key != key))
        if stale:
            if kind == "feed":
                self._cached = self.pipeline.feed(key)
            elif kind == "advance":
                self._cached = self.pipeline.advance(key)
            else:
                self._cached = self.pipeline.flush()
            self._kind, self._key = kind, key
            self._consumed = set()
        self._consumed.add(member)
        return self._cached


class SharedMemberRuntime:
    """Per-query view over a :class:`SharedGroup`: group matches plus
    this query's own RETURN continuation.  Implements the parts of the
    ``QueryRuntime`` surface the processor and the exporters touch."""

    def __init__(self, group: SharedGroup, name: str,
                 analyzed: AnalyzedQuery, functions: Any = None,
                 system: Any = None):
        self.group = group
        self.name = name
        self._transformation = Transformation(
            analyzed, stats=group.pipeline.stats, functions=functions,
            system=system)
        # The pipeline binds the *representative's* variable names; this
        # member's RETURN clause (and its results' provenance bindings)
        # use its own.  Signatures align components positionally, so the
        # rename is positional too; identity maps skip the copy.
        representative = group.pipeline.plan.analyzed
        rename = {rep.variable: own.variable
                  for rep, own in zip(representative.components,
                                      analyzed.components)}
        self._rename = None if all(key == value for key, value
                                   in rename.items()) else rename

    def _localize(self, match: Match) -> Match:
        rename = self._rename
        if rename is None:
            return match
        return Match({rename[variable]: binding
                      for variable, binding in match.bindings.items()},
                     match.start, match.end)

    def feed(self, event: Event) -> list[CompositeEvent]:
        process = self._transformation.process
        return [process(self._localize(match))
                for match in self.group._matches(self.name, "feed", event)]

    def feed_batch(self, events: list[Event]) -> list[CompositeEvent]:
        """Per-event loop: the shared pipeline memoizes group matches by
        event identity, so members must observe events one at a time to
        keep the single-scan-per-event guarantee."""
        outputs: list[CompositeEvent] = []
        for event in events:
            outputs.extend(self.feed(event))
        return outputs

    def feed_batch_grouped(
            self, events: list[Event]) -> list[list[CompositeEvent]]:
        return [self.feed(event) for event in events]

    def advance(self, watermark: float) -> list[CompositeEvent]:
        process = self._transformation.process
        return [process(self._localize(match)) for match in
                self.group._matches(self.name, "advance", watermark)]

    def flush(self) -> list[CompositeEvent]:
        process = self._transformation.process
        return [process(self._localize(match))
                for match in self.group._matches(self.name, "flush", None)]

    # -- QueryRuntime surface (delegated to the shared pipeline) -------------

    @property
    def plan(self):
        return self.group.pipeline.plan

    @property
    def stats(self):
        return self.group.pipeline.stats

    @property
    def scan_compiled(self) -> bool:
        return self.group.pipeline.scan_compiled

    @property
    def scan_coverage(self) -> dict[str, bool]:
        return self.group.pipeline.scan_coverage

    @property
    def stack_instances(self) -> int:
        return self.group.pipeline.stack_instances

    @property
    def partitions(self) -> int:
        return self.group.pipeline.partitions

    @property
    def pending_negations(self) -> int:
        return self.group.pipeline.pending_negations

    @property
    def scan_profile(self):
        return self.group.pipeline.scan_profile

    def enable_profiling(self):
        return self.group.pipeline.enable_profiling()
