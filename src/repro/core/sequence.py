"""Sequence scan (SS) and sequence construction (SC): the native sequence
operators at the bottom of every SASE plan.

The scan drives the pattern NFA over the stream, materialising accepted
events into active instance stacks (:mod:`repro.core.instances`); when an
event completes the pattern, construction walks the stacks backwards along
RIP pointers and emits every event sequence ending at that event.

Two published optimizations are implemented here and toggled by the plan
configuration:

* **window pushdown** — the WITHIN window prunes stack fronts during the
  scan and bounds the backward walk during construction, so sequences that
  could only violate the window are never built;
* **PAIS (partitioned active instance stacks)** — when the WHERE clause
  contains an equality equivalence class covering every positive component,
  events are hashed into per-value partitions and sequences are constructed
  within a partition only, so the implied equality predicates never see a
  false candidate.

Single-variable WHERE predicates are additionally evaluated at push time
(filter pushdown), so non-qualifying events never enter a stack.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable

from repro.core.expressions import EvalContext, compile_predicate
from repro.core.instances import Instance, StackGroup
from repro.core.match import Binding, Match
from repro.core.stats import PlanStats
from repro.lang.semantics import AnalyzedQuery
from repro.events.event import Event
from repro.obs.profile import ScanProfile

_NO_PARTITION = object()  # dict key for the single unpartitioned group


class SequenceScanConstruct:
    """The fused SS+SC operator."""

    #: True on code-generated subclasses (:mod:`repro.core.codegen`).
    compiled = False
    #: True when profiling hooks are present in the scan path.  The
    #: interpreted scan always has them (behind a None check); generated
    #: subclasses only emit them when compiled with ``profiling=True``.
    profiled = True
    #: True when the sequence-construction walk itself is generated code
    #: (non-Kleene patterns, and trailing-Kleene patterns under MAXIMAL
    #: semantics).  False here and on generated subclasses that inherit
    #: the interpreted ``_construct`` recursion.
    generated_construct = False
    #: True when ``feed_batch`` is a generated batch loop rather than the
    #: per-event fallback below.
    generated_batch = False

    def __init__(self, analyzed: AnalyzedQuery, *,
                 window_pushdown: bool = True,
                 partition_pushdown: bool = True,
                 filter_pushdown: bool = True,
                 construction_pushdown: bool = False,
                 kleene_maximal: bool = True,
                 max_kleene_events: int = 10,
                 prune_interval: int = 512,
                 stats: PlanStats | None = None,
                 functions: Any = None,
                 system: Any = None):
        positives = analyzed.positives
        self._n = len(positives)
        self._variables = [component.variable for component in positives]
        self._kleene = [component.kleene for component in positives]
        self._components_by_type: dict[str, list[int]] = {}
        for index, component in enumerate(positives):
            for event_type in component.event_types:
                self._components_by_type.setdefault(
                    event_type, []).append(index)
        # Presorted descending: when one event type fills several
        # components, the later component must see the previous stack as
        # it was *before* this event is pushed there (an event cannot
        # precede itself in a sequence).
        for indexes in self._components_by_type.values():
            indexes.sort(reverse=True)

        self._window = analyzed.window if window_pushdown else None
        self._kleene_maximal = kleene_maximal
        self._max_kleene_events = max_kleene_events
        self._prune_interval = max(1, prune_interval)
        self._functions = functions
        self._system = system

        self._filters: list[list[Callable[[EvalContext], bool]]] = \
            [[] for _ in range(self._n)]
        if filter_pushdown:
            for index, variable in enumerate(self._variables):
                for info in analyzed.component_filters.get(variable, ()):
                    self._filters[index].append(
                        compile_predicate(info.expr))

        self._key_attrs: list[str] | None = None
        if partition_pushdown and analyzed.partition is not None:
            attrs = [analyzed.partition.key_attribute(variable)
                     for variable in self._variables]
            if all(attr is not None for attr in attrs):
                self._key_attrs = [attr for attr in attrs
                                   if attr is not None]

        # Construction pushdown: cross-component predicates checked during
        # the backward DFS, as soon as every variable they mention is
        # bound.  Because the walk binds components n-1 .. 0, a predicate
        # fires at the *minimum* component index among its variables.
        # Predicates over Kleene variables stay in the KleeneFilter, and
        # partition equalities are skipped when PAIS already enforces them.
        self._construction_checks: list[
            list[tuple[Callable[[EvalContext], bool],
                       list[tuple[str, int]]]]] = [[] for _ in
                                                   range(self._n)]
        self.construction_pushdown = False
        if construction_pushdown:
            position = {variable: index for index, variable
                        in enumerate(self._variables)}
            kleene_vars = {variable for index, variable
                           in enumerate(self._variables)
                           if self._kleene[index]}
            for info in analyzed.selection_predicates:
                if self._key_attrs is not None and \
                        info.is_partition_equality:
                    continue
                if info.variables & kleene_vars:
                    continue
                needed = [(variable, position[variable])
                          for variable in info.variables]
                trigger = min(index for _, index in needed)
                self._construction_checks[trigger].append(
                    (compile_predicate(info.expr), needed))
                self.construction_pushdown = True

        self._groups: dict[Any, StackGroup] = {}
        self._events_seen = 0
        self._instance_count = 0
        self._stats = stats if stats is not None else PlanStats()
        self._op_stats = self._stats.operator("SSC")
        self._profile: ScanProfile | None = None

    # -- public surface ----------------------------------------------------

    @property
    def partitioned(self) -> bool:
        return self._key_attrs is not None

    @property
    def instance_count(self) -> int:
        return self._instance_count

    @property
    def partition_count(self) -> int:
        return len(self._groups)

    @property
    def profile(self) -> ScanProfile | None:
        return self._profile

    def enable_profiling(self) -> ScanProfile:
        """Turn on per-component admit/construct counters."""
        if self._profile is None:
            self._profile = ScanProfile(self._variables)
        return self._profile

    def feed(self, event: Event) -> list[Match]:
        """Scan one event; return the matches it completes."""
        self._op_stats.consumed += 1
        self._events_seen += 1
        matches: list[Match] = []

        component_indexes = self._components_by_type.get(event.type)
        if component_indexes:
            for index in component_indexes:  # presorted descending
                self._admit(event, index, matches)

        if self._events_seen % self._prune_interval == 0:
            self._prune_all(event.timestamp)
        self._stats.record_stack_size(self._instance_count,
                                      len(self._groups))
        self._op_stats.produced += len(matches)
        if self._profile is not None:
            self._profile.matches_emitted += len(matches)
        return matches

    def feed_batch(self, events: list[Event],
                   bounds: list[int] | None = None) -> list[Match]:
        """Scan a batch of events; return all matches in emission order.

        When *bounds* is given, the cumulative match count is appended
        after each event so the caller can slice the flat result list
        back into per-event chunks.  The interpreted operator just loops
        :meth:`feed`; generated subclasses emit a specialised batch loop.
        """
        matches: list[Match] = []
        for event in events:
            matches.extend(self.feed(event))
            if bounds is not None:
                bounds.append(len(matches))
        return matches

    def reset(self) -> None:
        self._groups.clear()
        self._events_seen = 0
        self._instance_count = 0

    # -- scan --------------------------------------------------------------

    def _admit(self, event: Event, index: int,
               matches: list[Match]) -> None:
        filters = self._filters[index]
        if filters:
            context = EvalContext({self._variables[index]: event},
                                  self._functions, self._system)
            for predicate in filters:
                if not predicate(context):
                    return

        key: Any = _NO_PARTITION
        if self._key_attrs is not None:
            key = event.attributes.get(self._key_attrs[index])
            if key is None:
                return

        group = self._groups.get(key)
        if group is None:
            if index != 0:
                return  # nothing to extend in this partition
            group = StackGroup(self._n)
            self._groups[key] = group
        elif self._window is not None:
            dropped = group.prune_before(event.timestamp - self._window)
            self._instance_count -= dropped

        previous = group.stacks[index - 1] if index > 0 else None
        if previous is not None:
            if len(previous) == 0:
                return
            # The earliest surviving predecessor must be strictly older.
            first = previous.get_absolute(
                previous.last_absolute_index - len(previous) + 1)
            if first.event.timestamp >= event.timestamp:
                return
            rip = previous.last_absolute_index
        else:
            rip = -1

        instance = group.stacks[index].push(event, rip)
        self._instance_count += 1
        if self._profile is not None:
            self._profile.admits[index] += 1
        if index == self._n - 1:
            self._construct(group, instance, matches)
        elif self._kleene[index]:
            # A Kleene event may extend sequences even when it lands in a
            # middle component; extension happens lazily at construction.
            pass

    def _prune_all(self, now: float) -> None:
        if self._window is None:
            return
        horizon = now - self._window
        emptied: list[Any] = []
        removed = 0
        for key, group in self._groups.items():
            alive = 0
            for stack in group.stacks:
                timestamps = stack._timestamps
                if timestamps and timestamps[0] < horizon:
                    cut = bisect.bisect_left(timestamps, horizon)
                    del stack._instances[:cut]
                    del timestamps[:cut]
                    stack._offset += cut
                    removed += cut
                alive += len(timestamps)
            if not alive:
                emptied.append(key)
        self._instance_count -= removed
        for key in emptied:
            del self._groups[key]

    # -- construction ------------------------------------------------------

    def _construct(self, group: StackGroup, trigger: Instance,
                   matches: list[Match]) -> None:
        if self._profile is not None:
            self._profile.construct_calls += 1
        end_ts = trigger.event.timestamp
        min_ts = end_ts - self._window if self._window is not None else None
        chosen: list[Binding | None] = [None] * self._n

        last = self._n - 1
        if self._kleene[last]:
            for anchor_binding, anchor in self._last_kleene_bindings(
                    group, trigger, min_ts):
                chosen[last] = anchor_binding
                if not self._passes_construction_checks(last, chosen):
                    continue
                self._descend(group, last - 1, anchor.rip,
                              anchor.event.timestamp, min_ts, chosen,
                              end_ts, matches)
        else:
            chosen[last] = trigger.event
            if not self._passes_construction_checks(last, chosen):
                return
            self._descend(group, last - 1, trigger.rip,
                          trigger.event.timestamp, min_ts, chosen,
                          end_ts, matches)

    def _descend(self, group: StackGroup, index: int, rip: int,
                 before_ts: float, min_ts: float | None,
                 chosen: list[Binding | None], end_ts: float,
                 matches: list[Match]) -> None:
        if index < 0:
            self._emit(chosen, end_ts, matches)
            return
        stack = group.stacks[index]
        for absolute in stack.candidate_range(rip, before_ts, min_ts):
            instance = stack.get_absolute(absolute)
            if self._kleene[index]:
                for binding in self._kleene_bindings(
                        stack, instance, before_ts):
                    chosen[index] = binding
                    if not self._passes_construction_checks(index,
                                                            chosen):
                        continue
                    self._descend(group, index - 1, instance.rip,
                                  instance.event.timestamp, min_ts, chosen,
                                  end_ts, matches)
            else:
                chosen[index] = instance.event
                if not self._passes_construction_checks(index, chosen):
                    continue
                self._descend(group, index - 1, instance.rip,
                              instance.event.timestamp, min_ts, chosen,
                              end_ts, matches)

    def _passes_construction_checks(self, index: int,
                                    chosen: list[Binding | None]) -> bool:
        checks = self._construction_checks[index]
        if not checks:
            return True
        for predicate, needed in checks:
            bindings = {variable: chosen[position]
                        for variable, position in needed}
            context = EvalContext(bindings, self._functions, self._system)
            if not predicate(context):
                return False
        return True

    def _emit(self, chosen: list[Binding | None], end_ts: float,
              matches: list[Match]) -> None:
        bindings: dict[str, Binding] = {}
        for variable, binding in zip(self._variables, chosen):
            assert binding is not None
            bindings[variable] = binding
        first = chosen[0]
        assert first is not None
        start_ts = first[0].timestamp if isinstance(first, tuple) \
            else first.timestamp
        matches.append(Match(bindings, start_ts, end_ts))

    # -- Kleene binding enumeration -----------------------------------------

    def _kleene_bindings(self, stack: Any, anchor: Instance,
                         before_ts: float) -> list[tuple[Event, ...]]:
        """Bindings for a middle Kleene component: the anchor instance plus
        events strictly between the anchor and the next component's event."""
        extras = [instance.event for instance in stack.instances_between(
            anchor.event.timestamp, before_ts)]
        return self._expand_kleene(anchor.event, extras)

    def _last_kleene_bindings(
            self, group: StackGroup, trigger: Instance,
            min_ts: float | None) -> list[tuple[tuple[Event, ...], Instance]]:
        """Bindings for a trailing Kleene component, all ending with the
        trigger event: ``(anchor, ..., trigger)`` for every valid anchor."""
        stack = group.stacks[self._n - 1]
        results: list[tuple[tuple[Event, ...], Instance]] = []
        # The trigger alone anchors the singleton binding.
        results.append(((trigger.event,), trigger))
        for absolute in stack.candidate_range(
                stack.last_absolute_index, trigger.event.timestamp, min_ts):
            anchor = stack.get_absolute(absolute)
            extras = [instance.event for instance in stack.instances_between(
                anchor.event.timestamp, trigger.event.timestamp)]
            if self._kleene_maximal:
                results.append((
                    (anchor.event, *extras, trigger.event), anchor))
            else:
                for subset in _subsets(extras, self._max_kleene_events):
                    results.append((
                        (anchor.event, *subset, trigger.event), anchor))
        return results

    def _expand_kleene(self, anchor: Event,
                       extras: list[Event]) -> list[tuple[Event, ...]]:
        if self._kleene_maximal:
            return [(anchor, *extras)]
        return [(anchor, *subset)
                for subset in _subsets(extras, self._max_kleene_events)]


def _subsets(events: list[Event],
             cap: int) -> list[tuple[Event, ...]]:
    """All order-preserving subsets of *events* (including the empty one),
    with the event list truncated at *cap* to bound the 2^n expansion."""
    events = events[:cap]
    subsets: list[tuple[Event, ...]] = [()]
    for event in events:
        subsets.extend(subset + (event,) for subset in list(subsets))
    return subsets
