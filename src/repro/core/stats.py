"""Operator statistics: the dataflow counters the SASE UI exposes.

Figure 3 of the paper shows intermediate results at each stage; these
counters make the same dataflow observable programmatically, and the E3
benchmark prints them.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class OperatorStats:
    """In/out counters for one pipelined operator."""

    name: str
    consumed: int = 0
    produced: int = 0

    @property
    def selectivity(self) -> float:
        """Fraction of inputs that survived (1.0 for an empty operator)."""
        if self.consumed == 0:
            return 1.0
        return self.produced / self.consumed

    def __repr__(self) -> str:
        return (f"OperatorStats({self.name}: in={self.consumed}, "
                f"out={self.produced})")


@dataclass
class PlanStats:
    """Statistics for a whole query plan run."""

    events_consumed: int = 0
    results_emitted: int = 0
    operators: dict[str, OperatorStats] = field(default_factory=dict)
    stack_high_water: int = 0
    partitions_high_water: int = 0

    def operator(self, name: str) -> OperatorStats:
        if name not in self.operators:
            self.operators[name] = OperatorStats(name)
        return self.operators[name]

    def record_stack_size(self, total_instances: int,
                          partitions: int) -> None:
        if total_instances > self.stack_high_water:
            self.stack_high_water = total_instances
        if partitions > self.partitions_high_water:
            self.partitions_high_water = partitions

    def snapshot(self) -> dict[str, tuple[int, int]]:
        """``{operator: (consumed, produced)}`` for reporting."""
        return {name: (stats.consumed, stats.produced)
                for name, stats in self.operators.items()}

    def to_dict(self) -> dict:
        """JSON-serializable form for the metrics exporter."""
        return {
            "events_consumed": self.events_consumed,
            "results_emitted": self.results_emitted,
            "stack_high_water": self.stack_high_water,
            "partitions_high_water": self.partitions_high_water,
            "operators": {name: {"consumed": stats.consumed,
                                 "produced": stats.produced}
                          for name, stats in self.operators.items()},
        }

    def __repr__(self) -> str:
        chain = " -> ".join(
            f"{name}[{stats.consumed}/{stats.produced}]"
            for name, stats in self.operators.items())
        return (f"PlanStats(events={self.events_consumed}, "
                f"results={self.results_emitted}, {chain})")
