"""The complex event processor: query plans over pipelined operators.

This package is the paper's primary contribution: a query-plan-based
implementation of the SASE language.  A plan is "a dataflow paradigm with
native sequence operators at the bottom, pipelining query-defined sequences
to subsequent relational style operators" (Section 2.1.2):

* :class:`~repro.core.sequence.SequenceScanConstruct` — the NFA-driven
  sequence scan (SS) and sequence construction (SC) operators, built on
  active instance stacks with RIP pointers, optionally window-pruned and
  value-partitioned (PAIS);
* :class:`~repro.core.operators.Selection` — parameterized predicates;
* :class:`~repro.core.operators.WindowFilter` — the WITHIN clause;
* :class:`~repro.core.operators.Negation` — non-occurrence checks,
  including leading/trailing negation with delayed emission;
* :class:`~repro.core.operators.Transformation` — the RETURN clause.

:class:`~repro.core.engine.Engine` is the public facade.
"""

from repro.core.engine import CompiledQuery, Engine, run_query
from repro.core.match import Match
from repro.core.plan import KleeneMode, PlanConfig, QueryPlan, build_plan
from repro.core.runtime import QueryRuntime
from repro.core.shared import SharedGroup, SharedMemberRuntime, \
    SharedPlanConfig, plan_signature
from repro.core.stats import OperatorStats, PlanStats

__all__ = [
    "CompiledQuery",
    "Engine",
    "KleeneMode",
    "Match",
    "OperatorStats",
    "PlanConfig",
    "PlanStats",
    "QueryPlan",
    "QueryRuntime",
    "SharedGroup",
    "SharedMemberRuntime",
    "SharedPlanConfig",
    "build_plan",
    "plan_signature",
    "run_query",
]
