"""Expression compilation: AST expressions to Python closures.

Predicates and RETURN items are compiled once per query into closures over
an :class:`EvalContext`, so the per-event hot path does no AST walking.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.errors import EvaluationError, FunctionError
from repro.events.event import Event
from repro.lang.ast import (
    AggregateCall,
    AggregateKind,
    AttributeRef,
    BinaryOp,
    BinOpKind,
    Expr,
    FunctionCall,
    Literal,
    UnaryOp,
    UnOpKind,
    VariableRef,
)


class EvalContext:
    """Everything an expression can see at evaluation time.

    ``bindings`` maps pattern variables to an :class:`Event` or, for Kleene
    components, a tuple of events.  ``functions`` resolves ``_`` function
    calls; ``system`` is passed through to those functions (it typically
    carries the event database handle).
    """

    __slots__ = ("bindings", "functions", "system")

    def __init__(self, bindings: Mapping[str, Any],
                 functions: "FunctionResolver | None" = None,
                 system: Any = None):
        self.bindings = bindings
        self.functions = functions
        self.system = system

    def rebind(self, variable: str, value: Any) -> "EvalContext":
        """A context with one binding overridden (used to evaluate negation
        and per-event Kleene predicates against a candidate event)."""
        bindings = dict(self.bindings)
        bindings[variable] = value
        return EvalContext(bindings, self.functions, self.system)


class FunctionResolver:
    """Minimal protocol for function lookup; the full registry lives in
    :mod:`repro.funcs`."""

    def call(self, name: str, context: EvalContext, args: list[Any]) -> Any:
        raise FunctionError(f"no function registry available to call "
                            f"{name!r}")


Compiled = Callable[[EvalContext], Any]


def compile_expr(expr: Expr) -> Compiled:
    """Compile *expr* into a closure evaluating it against a context."""
    if isinstance(expr, Literal):
        value = expr.value
        return lambda ctx: value
    if isinstance(expr, AttributeRef):
        return _compile_attribute_ref(expr)
    if isinstance(expr, VariableRef):
        name = expr.name
        def lookup_variable(ctx: EvalContext) -> Any:
            try:
                return ctx.bindings[name]
            except KeyError:
                raise EvaluationError(
                    f"unbound pattern variable {name!r}") from None
        return lookup_variable
    if isinstance(expr, UnaryOp):
        operand = compile_expr(expr.operand)
        if expr.op is UnOpKind.NOT:
            return lambda ctx: not _as_bool(operand(ctx))
        return lambda ctx: -_as_number(operand(ctx))
    if isinstance(expr, BinaryOp):
        return _compile_binary(expr)
    if isinstance(expr, FunctionCall):
        return _compile_function(expr)
    if isinstance(expr, AggregateCall):
        return _compile_aggregate(expr)
    raise EvaluationError(f"cannot compile expression node {expr!r}")


def compile_predicate(expr: Expr) -> Callable[[EvalContext], bool]:
    """Compile a boolean expression; the result is coerced with
    :func:`_as_bool` so misbehaving function results fail loudly."""
    compiled = compile_expr(expr)
    return lambda ctx: _as_bool(compiled(ctx))


# -- node compilers ---------------------------------------------------------

def _compile_attribute_ref(expr: AttributeRef) -> Compiled:
    variable, attribute = expr.variable, expr.attribute
    is_timestamp = attribute in ("Timestamp", "timestamp")

    def read_attribute(ctx: EvalContext) -> Any:
        try:
            event = ctx.bindings[variable]
        except KeyError:
            raise EvaluationError(
                f"unbound pattern variable {variable!r}") from None
        if isinstance(event, tuple):
            raise EvaluationError(
                f"{variable}.{attribute}: {variable!r} is a Kleene binding; "
                f"use an aggregate (e.g. LAST({variable}.{attribute}))")
        if is_timestamp:
            return event.timestamp
        try:
            return event.attributes[attribute]
        except KeyError:
            raise EvaluationError(
                f"event bound to {variable!r} has no attribute "
                f"{attribute!r}") from None

    return read_attribute


_ARITHMETIC: dict[BinOpKind, Callable[[Any, Any], Any]] = {
    BinOpKind.ADD: lambda a, b: a + b,
    BinOpKind.SUB: lambda a, b: a - b,
    BinOpKind.MUL: lambda a, b: a * b,
    BinOpKind.MOD: lambda a, b: a % b,
}

_COMPARE: dict[BinOpKind, Callable[[Any, Any], bool]] = {
    BinOpKind.EQ: lambda a, b: a == b,
    BinOpKind.NEQ: lambda a, b: a != b,
    BinOpKind.LT: lambda a, b: a < b,
    BinOpKind.LTE: lambda a, b: a <= b,
    BinOpKind.GT: lambda a, b: a > b,
    BinOpKind.GTE: lambda a, b: a >= b,
}


def _compile_binary(expr: BinaryOp) -> Compiled:
    left = compile_expr(expr.left)
    right = compile_expr(expr.right)
    op = expr.op
    if op is BinOpKind.AND:
        return lambda ctx: _as_bool(left(ctx)) and _as_bool(right(ctx))
    if op is BinOpKind.OR:
        return lambda ctx: _as_bool(left(ctx)) or _as_bool(right(ctx))
    if op in _COMPARE:
        compare = _COMPARE[op]
        def run_compare(ctx: EvalContext) -> bool:
            a, b = left(ctx), right(ctx)
            try:
                return compare(a, b)
            except TypeError as exc:
                raise EvaluationError(
                    f"cannot compare {a!r} with {b!r}") from exc
        return run_compare
    if op is BinOpKind.DIV:
        def run_div(ctx: EvalContext) -> float:
            denominator = _as_number(right(ctx))
            if denominator == 0:
                raise EvaluationError("division by zero")
            return _as_number(left(ctx)) / denominator
        return run_div
    arithmetic = _ARITHMETIC[op]
    def run_arithmetic(ctx: EvalContext) -> Any:
        a, b = left(ctx), right(ctx)
        try:
            return arithmetic(a, b)
        except TypeError as exc:
            raise EvaluationError(
                f"arithmetic {op.value} failed on {a!r}, {b!r}") from exc
    return run_arithmetic


def _compile_function(expr: FunctionCall) -> Compiled:
    name = expr.name
    arg_closures = [compile_expr(arg) for arg in expr.args]

    def call(ctx: EvalContext) -> Any:
        if ctx.functions is None:
            raise FunctionError(
                f"query calls {name!r} but the engine has no function "
                f"registry configured")
        args = [closure(ctx) for closure in arg_closures]
        return ctx.functions.call(name, ctx, args)

    return call


def _compile_aggregate(expr: AggregateCall) -> Compiled:
    kind = expr.kind
    if expr.arg is None:  # COUNT(*)
        def count_all(ctx: EvalContext) -> int:
            total = 0
            for binding in ctx.bindings.values():
                total += len(binding) if isinstance(binding, tuple) else 1
            return total
        return count_all

    if isinstance(expr.arg, VariableRef):  # COUNT(d)
        variable = expr.arg.name
        def count_variable(ctx: EvalContext) -> int:
            binding = _bound(ctx, variable)
            return len(binding) if isinstance(binding, tuple) else 1
        return count_variable

    assert isinstance(expr.arg, AttributeRef)
    variable, attribute = expr.arg.variable, expr.arg.attribute

    is_timestamp = attribute in ("Timestamp", "timestamp")

    def gather(ctx: EvalContext) -> list[Any]:
        binding = _bound(ctx, variable)
        events = binding if isinstance(binding, tuple) else (binding,)
        if is_timestamp:
            return [event.timestamp for event in events]
        values = []
        for event in events:
            try:
                values.append(event.attributes[attribute])
            except KeyError:
                raise EvaluationError(
                    f"event bound to {variable!r} has no attribute "
                    f"{attribute!r}") from None
        return values

    if kind is AggregateKind.COUNT:
        return lambda ctx: len(gather(ctx))
    if kind is AggregateKind.SUM:
        return lambda ctx: float(sum(_as_number(v) for v in gather(ctx)))
    if kind is AggregateKind.AVG:
        def average(ctx: EvalContext) -> float:
            values = gather(ctx)
            if not values:
                raise EvaluationError(f"AVG over empty binding {variable!r}")
            return float(sum(_as_number(v) for v in values)) / len(values)
        return average
    if kind is AggregateKind.MIN:
        return lambda ctx: min(gather(ctx))
    if kind is AggregateKind.MAX:
        return lambda ctx: max(gather(ctx))
    if kind is AggregateKind.FIRST:
        return lambda ctx: gather(ctx)[0]
    if kind is AggregateKind.LAST:
        return lambda ctx: gather(ctx)[-1]
    raise EvaluationError(f"unsupported aggregate {kind}")


# -- coercion helpers -------------------------------------------------------

def _bound(ctx: EvalContext, variable: str) -> Any:
    try:
        return ctx.bindings[variable]
    except KeyError:
        raise EvaluationError(
            f"unbound pattern variable {variable!r}") from None


def _as_bool(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    raise EvaluationError(f"expected a boolean, got {value!r}")


def _as_number(value: Any) -> float | int:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise EvaluationError(f"expected a number, got {value!r}")
    return value
