"""Active instance stacks (AIS) with RIP pointers.

This is the data structure behind the sequence scan/construction operators
(reference [8] of the paper): one stack per positive pattern component.
When an event is accepted for component ``j`` it is pushed as an
:class:`Instance` carrying a *RIP pointer* — the absolute index of the most
Recent Instance in the Previous stack at push time.  Sequence construction
walks the stacks backwards from a trigger instance: the predecessors of an
instance are exactly the previous stack's instances at absolute index
``<= rip`` (further narrowed by strict-time order and the window).

Stacks support front pruning for the window-pushdown optimization: absolute
indexes stay valid because each stack remembers how many instances it has
dropped (``offset``).
"""

from __future__ import annotations

import bisect
from typing import Iterator

from repro.events.event import Event


class Instance:
    """One event admitted into a stack, with its RIP pointer."""

    __slots__ = ("event", "rip")

    def __init__(self, event: Event, rip: int):
        self.event = event
        self.rip = rip

    def __repr__(self) -> str:
        return f"Instance({self.event.type}@{self.event.timestamp:g}, " \
               f"rip={self.rip})"


class InstanceStack:
    """An append-only, front-prunable stack of instances.

    Instances are pushed in arrival order so their timestamps are
    non-decreasing, which makes window and order bounds binary-searchable.
    """

    __slots__ = ("_instances", "_timestamps", "_offset")

    def __init__(self) -> None:
        self._instances: list[Instance] = []
        self._timestamps: list[float] = []
        self._offset = 0  # number of instances pruned from the front

    def __len__(self) -> int:
        return len(self._instances)

    def __iter__(self) -> Iterator[Instance]:
        return iter(self._instances)

    @property
    def total_pushed(self) -> int:
        """Absolute index the *next* push will receive."""
        return self._offset + len(self._instances)

    @property
    def last_absolute_index(self) -> int:
        """Absolute index of the most recent instance (-1 when empty)."""
        return self._offset + len(self._instances) - 1

    def push(self, event: Event, rip: int) -> Instance:
        instance = Instance(event, rip)
        self._instances.append(instance)
        self._timestamps.append(event.timestamp)
        return instance

    def get_absolute(self, index: int) -> Instance:
        return self._instances[index - self._offset]

    def prune_before(self, timestamp: float) -> int:
        """Drop instances with ``event.timestamp < timestamp`` from the
        front; returns how many were dropped."""
        cut = bisect.bisect_left(self._timestamps, timestamp)
        if cut > 0:
            del self._instances[:cut]
            del self._timestamps[:cut]
            self._offset += cut
        return cut

    def candidate_range(self, rip: int, before_ts: float,
                        min_ts: float | None) -> range:
        """Absolute indexes of valid predecessors: index ``<= rip``,
        timestamp strictly below *before_ts*, and (when *min_ts* is given)
        timestamp ``>= min_ts``.  The returned range may be empty."""
        low_pos = 0
        if min_ts is not None:
            low_pos = bisect.bisect_left(self._timestamps, min_ts)
        high_pos = bisect.bisect_left(self._timestamps, before_ts) - 1
        high_pos = min(high_pos, rip - self._offset)
        return range(self._offset + low_pos, self._offset + high_pos + 1)

    def instances_between(self, after_ts: float,
                          before_ts: float) -> list[Instance]:
        """Instances with ``after_ts < timestamp < before_ts`` (used for
        Kleene collection)."""
        low = bisect.bisect_right(self._timestamps, after_ts)
        high = bisect.bisect_left(self._timestamps, before_ts)
        return self._instances[low:high]


class StackGroup:
    """The full set of stacks for one (partition of a) pattern."""

    __slots__ = ("stacks",)

    def __init__(self, n_components: int):
        self.stacks = [InstanceStack() for _ in range(n_components)]

    def total_instances(self) -> int:
        return sum(len(stack) for stack in self.stacks)

    def prune_before(self, timestamp: float) -> int:
        return sum(stack.prune_before(timestamp) for stack in self.stacks)

    def is_empty(self) -> bool:
        return all(len(stack) == 0 for stack in self.stacks)
