"""The complete SASE system (Figure 1 of the paper).

:class:`~repro.system.processor.ComplexEventProcessor` hosts continuous
queries — monitoring queries, archiving rules, and stream+database queries.
:class:`~repro.system.sase.SaseSystem` wires all three layers together:
the simulated physical devices, the cleaning and association pipeline, the
processor, the event database, and the UI taps.
"""

from repro.system.context import SystemContext
from repro.system.metrics import MetricsCollector, QueryMetrics, \
    ShardMetrics
from repro.system.processor import ComplexEventProcessor, QueryKind, \
    RegisteredQuery
from repro.system.sase import SaseSystem

__all__ = ["ComplexEventProcessor", "MetricsCollector", "QueryKind",
           "QueryMetrics", "RegisteredQuery", "SaseSystem",
           "ShardMetrics", "SystemContext"]
