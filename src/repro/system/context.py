"""The system context handed to built-in functions at evaluation time."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.db.eventdb import EventDatabase
from repro.ons.service import ObjectNameService


@dataclass
class SystemContext:
    """What a ``_`` function can reach: the event database, the ONS, and a
    free-form extensions mapping for user functions."""

    event_db: EventDatabase
    ons: ObjectNameService | None = None
    extensions: dict[str, Any] = field(default_factory=dict)
