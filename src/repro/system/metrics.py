"""Per-query runtime metrics for the complex event processor.

The processor accounts, per registered query, the events fed, the results
produced, and the busy time spent inside the query's runtime — enough to
answer the operational questions a deployment asks: which query is the
bottleneck, what does each query's selectivity look like, and how fresh is
its last detection.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class QueryMetrics:
    """Counters for one continuous query."""

    name: str
    events_in: int = 0
    results_out: int = 0
    busy_seconds: float = 0.0
    last_result_at: float | None = None  # stream time of last result

    @property
    def events_per_second(self) -> float:
        """Sustained processing rate while busy."""
        if self.busy_seconds <= 0:
            return 0.0
        return self.events_in / self.busy_seconds

    @property
    def mean_feed_micros(self) -> float:
        """Mean cost of feeding one event, in microseconds."""
        if self.events_in == 0:
            return 0.0
        return self.busy_seconds / self.events_in * 1e6

    @property
    def selectivity(self) -> float:
        """Results per input event."""
        if self.events_in == 0:
            return 0.0
        return self.results_out / self.events_in

    def record(self, events: int, results: int, seconds: float,
               stream_time: float | None) -> None:
        self.events_in += events
        self.results_out += results
        self.busy_seconds += seconds
        if results and stream_time is not None:
            self.last_result_at = stream_time


@dataclass
class MetricsCollector:
    """All queries' metrics, keyed by query name."""

    queries: dict[str, QueryMetrics] = field(default_factory=dict)

    def query(self, name: str) -> QueryMetrics:
        metrics = self.queries.get(name)
        if metrics is None:
            metrics = QueryMetrics(name)
            self.queries[name] = metrics
        return metrics

    def forget(self, name: str) -> None:
        self.queries.pop(name, None)

    @property
    def total_busy_seconds(self) -> float:
        return sum(metrics.busy_seconds
                   for metrics in self.queries.values())

    def bottleneck(self) -> QueryMetrics | None:
        """The query consuming the most processing time."""
        if not self.queries:
            return None
        return max(self.queries.values(),
                   key=lambda metrics: metrics.busy_seconds)

    def report_lines(self) -> list[str]:
        """Human-readable summary, busiest query first."""
        ordered = sorted(self.queries.values(),
                         key=lambda metrics: metrics.busy_seconds,
                         reverse=True)
        lines = []
        for metrics in ordered:
            freshness = ("never" if metrics.last_result_at is None
                         else f"t={metrics.last_result_at:g}")
            lines.append(
                f"{metrics.name}: {metrics.events_in} ev, "
                f"{metrics.results_out} out "
                f"({metrics.selectivity:.4f}), "
                f"{metrics.mean_feed_micros:.1f} us/ev, "
                f"last result {freshness}")
        return lines
