"""Per-query and per-shard runtime metrics for the event processor.

The processor accounts, per registered query, the events fed, the results
produced, and the busy time spent inside the query's runtime — enough to
answer the operational questions a deployment asks: which query is the
bottleneck, what does each query's selectivity look like, and how fresh is
its last detection.  Per-feed latencies are sampled into a bounded
reservoir so p50/p95 tails (and shard imbalance) stay visible without
unbounded memory.  When the sharded runtime is active, the collector also
keeps per-shard routing counters: events routed, batches shipped,
queue-full stalls, worker restarts, and replayed batches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# Bounded latency reservoir: big enough for stable tail estimates, small
# enough that a thousand queries cost nothing.
_RESERVOIR_SIZE = 512
# Deterministic LCG (Numerical Recipes constants) for reservoir
# replacement — metrics must never perturb global random state.
_LCG_A = 1664525
_LCG_C = 1013904223
_LCG_M = 2 ** 32


@dataclass
class QueryMetrics:
    """Counters for one continuous query."""

    name: str
    events_in: int = 0
    results_out: int = 0
    busy_seconds: float = 0.0
    last_result_at: float | None = None  # stream time of last result
    _samples: list = field(default_factory=list, repr=False)
    _sampled: int = field(default=0, repr=False)
    _rng_state: int = field(default=1, repr=False)
    # Optional overflow list: shard workers attach one to ship raw
    # latency samples to the coordinator with each batch response.
    sample_sink: list | None = field(default=None, repr=False)

    @property
    def events_per_second(self) -> float:
        """Sustained processing rate while busy."""
        if self.busy_seconds <= 0:
            return 0.0
        return self.events_in / self.busy_seconds

    @property
    def mean_feed_micros(self) -> float:
        """Mean cost of feeding one event, in microseconds."""
        if self.events_in == 0:
            return 0.0
        return self.busy_seconds / self.events_in * 1e6

    @property
    def selectivity(self) -> float:
        """Results per input event."""
        if self.events_in == 0:
            return 0.0
        return self.results_out / self.events_in

    def record(self, events: int, results: int, seconds: float,
               stream_time: float | None) -> None:
        self.events_in += events
        self.results_out += results
        self.busy_seconds += seconds
        if results and stream_time is not None:
            # Freshness never moves backwards: a cascade composite (whose
            # event time is its detection end) can arrive behind the
            # source event that produced it.
            if self.last_result_at is None or \
                    stream_time > self.last_result_at:
                self.last_result_at = stream_time
        if events:
            self.observe_latency(seconds / events)

    def merge_delta(self, events: int, results: int, seconds: float,
                    last_result_at: float | None,
                    samples: list | None = None) -> None:
        """Fold a remote shard's per-batch counter delta into this entry
        (raw latency samples go straight into the reservoir — no
        synthetic averaged sample is added)."""
        self.events_in += events
        self.results_out += results
        self.busy_seconds += seconds
        if last_result_at is not None and \
                (self.last_result_at is None
                 or last_result_at > self.last_result_at):
            # Shard deltas can arrive out of stream-time order (a slow
            # shard reports late); freshness takes the max instead of the
            # latest arrival.
            self.last_result_at = last_result_at
        for sample in samples or ():
            self.observe_latency(sample)

    def observe_latency(self, seconds: float) -> None:
        """Sample one per-feed latency into the bounded reservoir
        (Vitter's Algorithm R, driven by the deterministic LCG)."""
        seen = self._sampled + 1
        if len(self._samples) < _RESERVOIR_SIZE:
            self._samples.append(seconds)
        else:
            # Algorithm R: the n-th sample replaces a reservoir slot with
            # probability SIZE/n, so every sample — early or late — ends
            # up retained with equal probability and the reservoir stays
            # representative of the whole run, not just its tail.
            self._rng_state = (_LCG_A * self._rng_state + _LCG_C) % _LCG_M
            # Scaled multiply instead of modulo: an LCG's low bits cycle
            # with short periods, which would bias slot selection.
            slot = (self._rng_state * seen) >> 32
            if slot < _RESERVOIR_SIZE:
                self._samples[slot] = seconds
        self._sampled = seen
        if self.sample_sink is not None:
            self.sample_sink.append(seconds)

    def latency_percentile(self, fraction: float) -> float:
        """A per-feed latency percentile (seconds) over the reservoir."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        index = min(len(ordered) - 1,
                    max(0, round(fraction * (len(ordered) - 1))))
        return ordered[index]

    @property
    def p50_feed_micros(self) -> float:
        return self.latency_percentile(0.50) * 1e6

    @property
    def p95_feed_micros(self) -> float:
        return self.latency_percentile(0.95) * 1e6


@dataclass
class ShardMetrics:
    """Routing and lifecycle counters for one shard of the sharded
    runtime."""

    shard_id: int
    events_routed: int = 0
    watermarks_sent: int = 0
    batches_sent: int = 0
    results_received: int = 0
    queue_full_stalls: int = 0
    worker_restarts: int = 0
    batches_replayed: int = 0
    worker_hangs: int = 0
    events_shed: int = 0
    events_lost: int = 0
    breaker_opens: int = 0
    # Ring-transport counters (process backend with the shared-memory
    # transport; zero elsewhere).  Frames/bytes count both directions
    # from the coordinator's side; a pipe fallback is a payload the ring
    # codec could not carry, rerouted over the multiprocessing queue.
    ring_frames_sent: int = 0
    ring_bytes_sent: int = 0
    ring_frames_received: int = 0
    ring_bytes_received: int = 0
    pipe_fallbacks: int = 0
    # Hybrid-wait profile of the coordinator against this shard: spins
    # are sched-yields (latency-biased), parks are backoff sleeps
    # (CPU-biased).  A park-heavy profile means the shard is slow or
    # idle; a spin-heavy one means responses arrive promptly.
    spin_waits: int = 0
    park_waits: int = 0
    # Remote-backend connection counters (zero elsewhere).  Reconnects
    # count sessions established after the first; heartbeats count pong
    # round-trips, whose RTTs feed a bounded reservoir; inflight is the
    # momentary credit usage (a gauge, not a counter).
    remote_reconnects: int = 0
    remote_heartbeats: int = 0
    remote_bytes_sent: int = 0
    remote_bytes_received: int = 0
    remote_inflight: int = 0
    # Hardened-tier counters: total milliseconds spent in reconnect
    # backoff, handshakes this side rejected or saw rejected (wrong
    # secret / version mismatch), and failovers where the link outlived
    # the reconnect budget (degraded as partitioned, not crashed).
    reconnect_backoff_ms: float = 0.0
    remote_auth_failures: int = 0
    remote_partitions: int = 0
    _rtt_samples: list = field(default_factory=list, repr=False)
    _rtt_sampled: int = field(default=0, repr=False)
    _rtt_rng_state: int = field(default=1, repr=False)

    def observe_rtt(self, seconds: float) -> None:
        """Sample one heartbeat round-trip into the bounded reservoir
        (same Algorithm R + LCG scheme as the latency reservoir)."""
        seen = self._rtt_sampled + 1
        if len(self._rtt_samples) < _RESERVOIR_SIZE:
            self._rtt_samples.append(seconds)
        else:
            self._rtt_rng_state = \
                (_LCG_A * self._rtt_rng_state + _LCG_C) % _LCG_M
            slot = (self._rtt_rng_state * seen) >> 32
            if slot < _RESERVOIR_SIZE:
                self._rtt_samples[slot] = seconds
        self._rtt_sampled = seen

    def rtt_percentile(self, fraction: float) -> float:
        """A heartbeat RTT percentile (seconds) over the reservoir."""
        if not self._rtt_samples:
            return 0.0
        ordered = sorted(self._rtt_samples)
        index = min(len(ordered) - 1,
                    max(0, round(fraction * (len(ordered) - 1))))
        return ordered[index]

    @property
    def remote_rtt_p50(self) -> float:
        return self.rtt_percentile(0.50)

    @property
    def remote_rtt_p95(self) -> float:
        return self.rtt_percentile(0.95)


@dataclass
class MetricsCollector:
    """All queries' metrics, keyed by query name."""

    queries: dict[str, QueryMetrics] = field(default_factory=dict)
    shards: dict[int, ShardMetrics] = field(default_factory=dict)

    def query(self, name: str) -> QueryMetrics:
        metrics = self.queries.get(name)
        if metrics is None:
            metrics = QueryMetrics(name)
            self.queries[name] = metrics
        return metrics

    def shard(self, shard_id: int) -> ShardMetrics:
        metrics = self.shards.get(shard_id)
        if metrics is None:
            metrics = ShardMetrics(shard_id)
            self.shards[shard_id] = metrics
        return metrics

    def forget(self, name: str) -> None:
        self.queries.pop(name, None)

    @property
    def total_busy_seconds(self) -> float:
        return sum(metrics.busy_seconds
                   for metrics in self.queries.values())

    def bottleneck(self) -> QueryMetrics | None:
        """The query consuming the most processing time."""
        if not self.queries:
            return None
        return max(self.queries.values(),
                   key=lambda metrics: metrics.busy_seconds)

    def report_lines(self) -> list[str]:
        """Human-readable summary, busiest query first."""
        ordered = sorted(self.queries.values(),
                         key=lambda metrics: metrics.busy_seconds,
                         reverse=True)
        lines = []
        for metrics in ordered:
            freshness = ("never" if metrics.last_result_at is None
                         else f"t={metrics.last_result_at:g}")
            lines.append(
                f"{metrics.name}: {metrics.events_in} ev, "
                f"{metrics.results_out} out "
                f"({metrics.selectivity:.4f}), "
                f"{metrics.mean_feed_micros:.1f} us/ev "
                f"(p50 {metrics.p50_feed_micros:.1f}, "
                f"p95 {metrics.p95_feed_micros:.1f}), "
                f"last result {freshness}")
        for shard in sorted(self.shards.values(),
                            key=lambda metrics: metrics.shard_id):
            lines.append(
                f"shard {shard.shard_id}: {shard.events_routed} ev routed, "
                f"{shard.watermarks_sent} watermarks, "
                f"{shard.batches_sent} batches, "
                f"{shard.results_received} results, "
                f"{shard.queue_full_stalls} stalls, "
                f"{shard.worker_restarts} restarts, "
                f"{shard.batches_replayed} replayed")
            if shard.ring_frames_sent or shard.ring_frames_received \
                    or shard.pipe_fallbacks:
                lines.append(
                    f"shard {shard.shard_id} transport: "
                    f"{shard.ring_frames_sent} frames out "
                    f"({shard.ring_bytes_sent} B), "
                    f"{shard.ring_frames_received} frames in "
                    f"({shard.ring_bytes_received} B), "
                    f"{shard.pipe_fallbacks} pipe fallbacks, "
                    f"{shard.spin_waits} spins / "
                    f"{shard.park_waits} parks")
            if shard.remote_bytes_sent or shard.remote_bytes_received \
                    or shard.remote_reconnects:
                lines.append(
                    f"shard {shard.shard_id} remote: "
                    f"{shard.remote_bytes_sent} B out / "
                    f"{shard.remote_bytes_received} B in, "
                    f"{shard.remote_reconnects} reconnects, "
                    f"{shard.remote_heartbeats} heartbeats "
                    f"(rtt p50 {shard.remote_rtt_p50 * 1e6:.0f} us, "
                    f"p95 {shard.remote_rtt_p95 * 1e6:.0f} us), "
                    f"{shard.remote_inflight} in flight")
            if (shard.reconnect_backoff_ms or shard.remote_partitions
                    or shard.remote_auth_failures):
                lines.append(
                    f"shard {shard.shard_id} network: "
                    f"{shard.reconnect_backoff_ms:.1f} ms backoff, "
                    f"{shard.remote_partitions} partitions, "
                    f"{shard.remote_auth_failures} auth failures")
            if (shard.worker_hangs or shard.events_shed
                    or shard.events_lost or shard.breaker_opens):
                lines.append(
                    f"shard {shard.shard_id} resilience: "
                    f"{shard.worker_hangs} hangs, "
                    f"{shard.events_shed} shed, "
                    f"{shard.events_lost} lost, "
                    f"{shard.breaker_opens} breaker opens")
        return lines
