"""The complex event processor: continuous queries over the event stream.

Section 3 gives the processor three tasks, all supported here:

1. **monitoring queries** — registered with a callback; every satisfaction
   produces a notification result;
2. **archiving rules** — transformation queries whose RETURN clauses call
   database functions (``_updateLocation``, ``_updateContainment``); their
   results stream to the event database rather than the user;
3. **stream + database queries** — monitoring queries whose RETURN clause
   performs lookups (``_retrieveLocation``); detection triggers the
   subquery and the combined result goes back to the user.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Iterable

import time

from repro.core.engine import CompiledQuery, Engine
from repro.core.plan import PlanConfig
from repro.core.runtime import QueryRuntime
from repro.errors import SaseError
from repro.events.event import CompositeEvent, Event
from repro.events.model import SchemaRegistry
from repro.system.metrics import MetricsCollector

ResultCallback = Callable[[str, CompositeEvent], None]


class QueryKind(enum.Enum):
    MONITORING = "monitoring"
    ARCHIVING_RULE = "archiving rule"


@dataclass
class RegisteredQuery:
    """One live continuous query."""

    name: str
    kind: QueryKind
    compiled: CompiledQuery
    runtime: QueryRuntime
    on_result: ResultCallback | None
    results_produced: int = 0

    @property
    def input_stream(self) -> str:
        """The stream this query reads (the FROM clause; "if it is
        omitted, the query refers to a default system input")."""
        return self.compiled.analyzed.query.from_stream or \
            ComplexEventProcessor.DEFAULT_STREAM

    @property
    def output_stream(self) -> str | None:
        """The stream this query's composite events feed (INTO)."""
        return self.compiled.analyzed.output_stream


class ComplexEventProcessor:
    """Hosts continuous queries; feed it the cleaned event stream.

    Queries compose through named streams: a query whose RETURN clause ends
    in ``INTO <stream>`` publishes its composite events there, and a query
    with ``FROM <stream>`` consumes them — the language's mechanism for
    building detection hierarchies.  Cascades are depth-limited so a
    self-feeding query fails loudly instead of looping.
    """

    DEFAULT_STREAM = "default"
    MAX_CASCADE_DEPTH = 16

    def __init__(self, registry: SchemaRegistry, functions: Any = None,
                 system: Any = None, config: PlanConfig | None = None):
        self._engine = Engine(registry, functions=functions, system=system,
                              config=config)
        self._queries: dict[str, RegisteredQuery] = {}
        self.metrics = MetricsCollector()

    # -- registration -------------------------------------------------------

    def register(self, name: str, query: str | CompiledQuery,
                 kind: QueryKind = QueryKind.MONITORING,
                 on_result: ResultCallback | None = None,
                 config: PlanConfig | None = None) -> RegisteredQuery:
        """Register a continuous query.  "The event processor immediately
        starts executing the query over the RFID stream ... until the query
        is deleted by the user"."""
        if name in self._queries:
            raise SaseError(f"a query named {name!r} is already registered")
        compiled = query if isinstance(query, CompiledQuery) \
            else self._engine.compile(query, config)
        registered = RegisteredQuery(
            name=name, kind=kind, compiled=compiled,
            runtime=self._engine.runtime(compiled), on_result=on_result)
        self._queries[name] = registered
        return registered

    def register_monitoring_query(self, name: str, query: str,
                                  on_result: ResultCallback | None = None) \
            -> RegisteredQuery:
        return self.register(name, query, QueryKind.MONITORING, on_result)

    def register_archiving_rule(self, name: str,
                                query: str) -> RegisteredQuery:
        return self.register(name, query, QueryKind.ARCHIVING_RULE)

    def deregister(self, name: str) -> None:
        if name not in self._queries:
            raise SaseError(f"no query named {name!r} is registered")
        del self._queries[name]
        self.metrics.forget(name)

    def queries(self) -> list[RegisteredQuery]:
        return list(self._queries.values())

    def query(self, name: str) -> RegisteredQuery:
        try:
            return self._queries[name]
        except KeyError:
            raise SaseError(f"no query named {name!r} is registered") \
                from None

    # -- stream side ----------------------------------------------------------

    def feed(self, event: Event,
             stream: str = DEFAULT_STREAM) \
            -> list[tuple[str, CompositeEvent]]:
        """Push one event through every query reading *stream*, cascading
        INTO-published composite events to their consumers; returns the
        (query name, result) pairs produced and fires callbacks."""
        produced: list[tuple[str, CompositeEvent]] = []
        pending: list[tuple[str, Event, int]] = [(stream, event, 0)]
        while pending:
            current_stream, current_event, depth = pending.pop(0)
            if depth > self.MAX_CASCADE_DEPTH:
                raise SaseError(
                    f"query cascade exceeded {self.MAX_CASCADE_DEPTH} "
                    f"levels on stream {current_stream!r}; check for an "
                    f"INTO/FROM cycle")
            for registered in self._queries.values():
                if registered.input_stream != current_stream:
                    continue
                started = time.perf_counter()
                results = registered.runtime.feed(current_event)
                self.metrics.query(registered.name).record(
                    1, len(results), time.perf_counter() - started,
                    current_event.timestamp)
                for result in results:
                    self._deliver(registered, result, produced)
                    if result.stream is not None:
                        pending.append((result.stream, result.to_event(),
                                        depth + 1))
        return produced

    def _deliver(self, registered: RegisteredQuery,
                 result: CompositeEvent,
                 produced: list[tuple[str, CompositeEvent]]) -> None:
        registered.results_produced += 1
        produced.append((registered.name, result))
        if registered.on_result is not None:
            registered.on_result(registered.name, result)

    def feed_many(self, events: Iterable[Event]) \
            -> list[tuple[str, CompositeEvent]]:
        produced: list[tuple[str, CompositeEvent]] = []
        for event in events:
            produced.extend(self.feed(event))
        return produced

    def flush(self) -> list[tuple[str, CompositeEvent]]:
        """End of stream: release pending trailing-negation matches.

        Queries flush in cascade order (producers before their INTO
        consumers) so composite events released at flush time still reach
        downstream queries before those flush themselves.
        """
        produced: list[tuple[str, CompositeEvent]] = []
        flushed: set[str] = set()
        for registered in self._flush_order():
            for result in registered.runtime.flush():
                self._deliver(registered, result, produced)
                if result.stream is not None:
                    self._route_late(result.stream, result.to_event(),
                                     flushed, produced, depth=0)
            flushed.add(registered.name)
        return produced

    def _route_late(self, stream: str, event: Event, flushed: set[str],
                    produced: list[tuple[str, CompositeEvent]],
                    depth: int) -> None:
        if depth > self.MAX_CASCADE_DEPTH:
            raise SaseError(
                f"query cascade exceeded {self.MAX_CASCADE_DEPTH} levels "
                f"during flush on stream {stream!r}")
        for registered in self._queries.values():
            if registered.input_stream != stream or \
                    registered.name in flushed:
                continue
            for result in registered.runtime.feed(event):
                self._deliver(registered, result, produced)
                if result.stream is not None:
                    self._route_late(result.stream, result.to_event(),
                                     flushed, produced, depth + 1)

    def _flush_order(self) -> list[RegisteredQuery]:
        """Producers before consumers: order queries by their stream depth
        (DEFAULT at depth 0, a query publishing INTO a stream puts that
        stream one level deeper)."""
        depth: dict[str, int] = {self.DEFAULT_STREAM: 0}
        changed = True
        iterations = 0
        while changed and iterations <= len(self._queries) + 1:
            changed = False
            iterations += 1
            for registered in self._queries.values():
                source = depth.get(registered.input_stream)
                target = registered.output_stream
                if source is not None and target is not None:
                    proposed = source + 1
                    if depth.get(target, -1) < proposed:
                        depth[target] = min(proposed,
                                            self.MAX_CASCADE_DEPTH)
                        changed = changed or \
                            depth[target] != self.MAX_CASCADE_DEPTH
        return sorted(self._queries.values(),
                      key=lambda registered: depth.get(
                          registered.input_stream, 0))
