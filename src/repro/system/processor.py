"""The complex event processor: continuous queries over the event stream.

Section 3 gives the processor three tasks, all supported here:

1. **monitoring queries** — registered with a callback; every satisfaction
   produces a notification result;
2. **archiving rules** — transformation queries whose RETURN clauses call
   database functions (``_updateLocation``, ``_updateContainment``); their
   results stream to the event database rather than the user;
3. **stream + database queries** — monitoring queries whose RETURN clause
   performs lookups (``_retrieveLocation``); detection triggers the
   subquery and the combined result goes back to the user.

The processor can also run **sharded**: construct it with a
:class:`~repro.sharding.ShardingConfig` whose :attr:`active` flag is set
and the cleaned stream is hash-partitioned across worker shards (see
``repro.sharding``).  The default configuration (one inline shard) keeps
the classic synchronous single-process behaviour.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Iterable, TYPE_CHECKING

import time

from repro.core.engine import CompiledQuery, Engine
from repro.core.plan import PlanConfig
from repro.core.runtime import QueryRuntime
from repro.core.shared import SharedGroup, SharedMemberRuntime, \
    SharedPlanConfig, plan_signature
from repro.errors import SaseError
from repro.events.event import CompositeEvent, Event
from repro.events.model import SchemaRegistry
from repro.obs.profile import ScanProfile, SlowFeedLog
from repro.obs.trace import DataflowTracer
from repro.system.metrics import MetricsCollector

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sharding.config import ShardingConfig

ResultCallback = Callable[[str, CompositeEvent], None]


class QueryKind(enum.Enum):
    MONITORING = "monitoring"
    ARCHIVING_RULE = "archiving rule"


@dataclass
class RegisteredQuery:
    """One live continuous query."""

    name: str
    kind: QueryKind
    compiled: CompiledQuery
    runtime: QueryRuntime | SharedMemberRuntime
    on_result: ResultCallback | None
    results_produced: int = 0
    # The shared-plan group evaluating this query's match pipeline, or
    # None when the query runs independently.
    shared_group: SharedGroup | None = None

    @property
    def shared(self) -> bool:
        return self.shared_group is not None

    @property
    def input_stream(self) -> str:
        """The stream this query reads (the FROM clause; "if it is
        omitted, the query refers to a default system input")."""
        return self.compiled.analyzed.query.from_stream or \
            ComplexEventProcessor.DEFAULT_STREAM

    @property
    def output_stream(self) -> str | None:
        """The stream this query's composite events feed (INTO)."""
        return self.compiled.analyzed.output_stream


class ComplexEventProcessor:
    """Hosts continuous queries; feed it the cleaned event stream.

    Queries compose through named streams: a query whose RETURN clause ends
    in ``INTO <stream>`` publishes its composite events there, and a query
    with ``FROM <stream>`` consumes them — the language's mechanism for
    building detection hierarchies.  Cascades are depth-limited so a
    self-feeding query fails loudly instead of looping.
    """

    DEFAULT_STREAM = "default"
    MAX_CASCADE_DEPTH = 16

    def __init__(self, registry: SchemaRegistry, functions: Any = None,
                 system: Any = None, config: PlanConfig | None = None,
                 sharding: "ShardingConfig | None" = None,
                 use_dispatch_index: bool = True,
                 resilience: Any = None,
                 shared_plans: SharedPlanConfig | None = None):
        self._engine = Engine(registry, functions=functions, system=system,
                              config=config)
        self._queries: dict[str, RegisteredQuery] = {}
        # Shared-plan evaluation (off unless configured): signature ->
        # the latest (joinable) group.  Superseded groups stay alive
        # through their members only.  Not supported under sharding:
        # worker shards rebuild runtimes from specs on their own side.
        self._shared = shared_plans \
            if shared_plans is not None and shared_plans.enabled else None
        self._shared_groups: dict[tuple, SharedGroup] = {}
        # Online-lifecycle listeners: called with ("register" |
        # "deregister", registered) after the query set changes, so
        # long-lived attachments (the persistence manager's replay
        # horizon, a serving control plane) can re-derive their state.
        self._lifecycle_listeners: list[
            Callable[[str, RegisteredQuery], None]] = []
        self.metrics = MetricsCollector()
        self._sharding = sharding
        # ResilienceConfig (or None): the router reads it to arm worker
        # chaos, shard supervision, and load shedding.
        self.resilience = resilience
        self._router: Any = None
        # Multi-query dispatch index: stream -> event type -> the ordered
        # actions to take (feed subscribing queries, watermark-advance
        # negation queries that skip the event).  Built lazily per
        # (stream, type) pair, invalidated on (de)registration.
        self._use_dispatch_index = use_dispatch_index
        self._dispatch_cache: dict[
            tuple[str, str], list[tuple[RegisteredQuery, bool]]] = {}
        # Observability (all opt-in; the hot path pays one None check
        # per hook when disabled).
        self._tracer: DataflowTracer | None = None
        self._slow_log: SlowFeedLog | None = None
        # Exactly-once delivery gate (the persistence manager's match
        # suppression during crash recovery).
        self._delivery_filter: Callable[[str, CompositeEvent],
                                        bool] | None = None
        # Persistence write path, fused into feed() so durability costs
        # no extra per-event calls in host loops (one None check each
        # when persistence is off).
        self._persist_log: Callable[[Event], Any] | None = None
        self._persist_post: Callable[[], Any] | None = None
        # True while a feed_batch is executing: registration changes are
        # rejected so delivery never looks up a query a mid-batch
        # callback removed.
        self._in_batch = False

    @property
    def sharding(self) -> "ShardingConfig | None":
        return self._sharding

    # -- observability --------------------------------------------------------

    @property
    def tracer(self) -> DataflowTracer | None:
        return self._tracer

    def enable_tracing(self, capacity: int = 4096) -> DataflowTracer:
        """Turn on dataflow tracing; returns the tracer.

        Under an active sharding configuration this must happen before
        the first feed: the worker specification snapshots the trace flag
        when the router starts, so shards launched untraced stay
        untraced.
        """
        if self._tracer is None:
            if self._router is not None:
                raise SaseError(
                    "enable tracing before the sharded stream starts; "
                    "worker shards snapshot the trace flag at launch")
            self._tracer = DataflowTracer(capacity)
        return self._tracer

    def attach_tracer(self, tracer: DataflowTracer) -> None:
        """Adopt an externally owned tracer (shard worker cores share one
        shipping tracer across their group processors)."""
        self._tracer = tracer

    @property
    def slow_feed_log(self) -> SlowFeedLog | None:
        return self._slow_log

    def enable_slow_feed_log(self, threshold_seconds: float,
                             capacity: int = 256) -> SlowFeedLog:
        """Log (event, query) whenever one feed call exceeds
        *threshold_seconds* of wall time."""
        self._slow_log = SlowFeedLog(threshold_seconds, capacity)
        return self._slow_log

    def enable_profiling(self) -> dict[str, ScanProfile]:
        """Turn on per-component scan counters for every registered
        query (register queries first; must precede the first event)."""
        return {name: registered.runtime.enable_profiling()
                for name, registered in self._queries.items()}

    def scan_profiles(self) -> dict[str, ScanProfile]:
        """The active per-query scan profiles (empty until enabled)."""
        profiles = {}
        for name, registered in self._queries.items():
            profile = registered.runtime.scan_profile
            if profile is not None:
                profiles[name] = profile
        return profiles

    # -- registration -------------------------------------------------------

    def register(self, name: str, query: str | CompiledQuery,
                 kind: QueryKind = QueryKind.MONITORING,
                 on_result: ResultCallback | None = None,
                 config: PlanConfig | None = None) -> RegisteredQuery:
        """Register a continuous query.  "The event processor immediately
        starts executing the query over the RFID stream ... until the query
        is deleted by the user"."""
        if self._in_batch:
            raise SaseError(
                "cannot register a query while a batch feed is in flight; "
                "register between batches")
        if name in self._queries:
            raise SaseError(f"a query named {name!r} is already registered")
        if self._router is not None:
            raise SaseError(
                "cannot register a query after the sharded stream has "
                "started; register every query before the first feed")
        compiled = query if isinstance(query, CompiledQuery) \
            else self._engine.compile(query, config)
        runtime, group = self._build_runtime(name, compiled)
        registered = RegisteredQuery(
            name=name, kind=kind, compiled=compiled, runtime=runtime,
            on_result=on_result, shared_group=group)
        self._queries[name] = registered
        self._dispatch_cache.clear()
        self._notify_lifecycle("register", registered)
        return registered

    def _build_runtime(self, name: str, compiled: CompiledQuery) \
            -> tuple[QueryRuntime | SharedMemberRuntime,
                     SharedGroup | None]:
        """An independent runtime, or a member of a shared-plan group
        when sharing is on and the query's match plan is shareable."""
        if self._shared is None or \
                (self._sharding is not None and self._sharding.active):
            return self._engine.runtime(compiled), None
        signature = plan_signature(compiled.analyzed, compiled.plan.config,
                                   self._shared)
        if signature is None:
            return self._engine.runtime(compiled), None
        group = self._shared_groups.get(signature)
        if group is None or not group.joinable:
            # A warm group is never joined: its pipeline already holds
            # partial matches a query registered *now* must not see.
            pipeline = QueryRuntime(compiled.plan, self._engine.functions,
                                    self._engine.system, raw_matches=True)
            group = SharedGroup(signature, pipeline)
            self._shared_groups[signature] = group
        member = group.add_member(name, compiled.analyzed,
                                  functions=self._engine.functions,
                                  system=self._engine.system)
        return member, group

    def compile(self, query: str,
                config: PlanConfig | None = None) -> CompiledQuery:
        """Compile *query* without registering it (validation, or
        compile-once-register-later flows like admission queues)."""
        return self._engine.compile(query, config)

    def register_monitoring_query(self, name: str, query: str,
                                  on_result: ResultCallback | None = None) \
            -> RegisteredQuery:
        return self.register(name, query, QueryKind.MONITORING, on_result)

    def register_archiving_rule(self, name: str,
                                query: str) -> RegisteredQuery:
        return self.register(name, query, QueryKind.ARCHIVING_RULE)

    def deregister(self, name: str) -> None:
        """Withdraw a continuous query, releasing every resource it
        holds: its runtime (partition index, window state, pending
        negations), its shared-group membership, its dispatch-index
        entries, and its metrics.  Lifecycle listeners run last so
        attachments like the persistence manager's replay horizon
        re-derive from the remaining query set."""
        if self._in_batch:
            raise SaseError(
                "cannot deregister a query while a batch feed is in "
                "flight; deregister between batches")
        if name not in self._queries:
            raise SaseError(f"no query named {name!r} is registered")
        if self._router is not None:
            raise SaseError(
                "cannot deregister a query after the sharded stream has "
                "started")
        registered = self._queries.pop(name)
        group = registered.shared_group
        if group is not None:
            group.remove_member(name)
            if not group.members and \
                    self._shared_groups.get(group.signature) is group:
                del self._shared_groups[group.signature]
        # Drop the runtime reference eagerly: RegisteredQuery objects can
        # outlive deregistration in caller hands, and the runtime is
        # where the per-query stream state (stacks, partitions, buffered
        # negations) lives.
        registered.runtime = None  # type: ignore[assignment]
        self._dispatch_cache.clear()
        self.metrics.forget(name)
        self._notify_lifecycle("deregister", registered)

    # -- online lifecycle ----------------------------------------------------

    def add_lifecycle_listener(
            self, listener: Callable[[str, RegisteredQuery], None]) -> None:
        """Call *listener(action, registered)* after every register or
        deregister ("register"/"deregister")."""
        self._lifecycle_listeners.append(listener)

    def remove_lifecycle_listener(
            self, listener: Callable[[str, RegisteredQuery], None]) -> None:
        try:
            self._lifecycle_listeners.remove(listener)
        except ValueError:
            pass

    def _notify_lifecycle(self, action: str,
                          registered: RegisteredQuery) -> None:
        for listener in list(self._lifecycle_listeners):
            listener(action, registered)

    def shared_plan_report(self) -> dict[str, Any]:
        """Shared-plan introspection: group count, member fan-out, and
        how many registered queries ride a shared pipeline."""
        groups = {id(registered.shared_group)
                  for registered in self._queries.values()
                  if registered.shared_group is not None}
        shared_queries = sum(1 for registered in self._queries.values()
                             if registered.shared_group is not None)
        fanout = [len(registered.shared_group.members)
                  for registered in self._queries.values()
                  if registered.shared_group is not None]
        return {
            "enabled": self._shared is not None,
            "groups": len(groups),
            "shared_queries": shared_queries,
            "independent_queries": len(self._queries) - shared_queries,
            "max_fanout": max(fanout, default=0),
        }

    def queries(self) -> list[RegisteredQuery]:
        return list(self._queries.values())

    def query(self, name: str) -> RegisteredQuery:
        try:
            return self._queries[name]
        except KeyError:
            raise SaseError(f"no query named {name!r} is registered") \
                from None

    # -- stream side ----------------------------------------------------------

    def feed(self, event: Event,
             stream: str = DEFAULT_STREAM) \
            -> list[tuple[str, CompositeEvent]]:
        """Push one event through every query reading *stream*, cascading
        INTO-published composite events to their consumers; returns the
        (query name, result) pairs produced and fires callbacks.

        Under an active sharding configuration the event is handed to the
        shard router instead; the returned results are then the merged,
        deterministically ordered results that have become complete so far
        (asynchronous backends may emit them on a later feed or at flush).
        """
        log = self._persist_log
        if log is not None:
            log(event)   # WAL-before-processing
        if self._tracer is not None:
            self._tracer.begin(event, stream=stream)
        if self._sharding is not None and self._sharding.active:
            router = self._ensure_router()
            emitted = router.feed(event, stream)
        else:
            emitted = self._run_queries(event, stream)
        results = self._deliver_all(emitted)
        post = self._persist_post
        if post is not None:
            released = post()   # a due checkpoint's drain barrier
            if released:
                results.extend(released)
        return results

    def _run_queries(self, event: Event, stream: str,
                     only: frozenset | set | None = None) \
            -> list[tuple[str, CompositeEvent]]:
        """The synchronous dataflow: feed *event* to every query reading
        *stream* (restricted to *only* when given), cascading composite
        events.  Results are returned, not delivered.

        With the dispatch index enabled, only queries whose pattern
        mentions the event's type (positively or under negation) are fed;
        negation queries that skip the event still receive its timestamp
        as a watermark so trailing-negation matches release at the same
        stream time either way.
        """
        tracer = self._tracer
        slow = self._slow_log
        produced: list[tuple[str, CompositeEvent]] = []
        pending: list[tuple[str, Event, int]] = [(stream, event, 0)]
        while pending:
            current_stream, current_event, depth = pending.pop(0)
            if depth > self.MAX_CASCADE_DEPTH:
                raise SaseError(
                    f"query cascade exceeded {self.MAX_CASCADE_DEPTH} "
                    f"levels on stream {current_stream!r}; check for an "
                    f"INTO/FROM cycle")
            actions = self._dispatch_actions(current_stream,
                                             current_event.type)
            if tracer is not None:
                tracer.record(
                    "dispatch", stream=current_stream,
                    ts=current_event.timestamp,
                    detail={"event_type": current_event.type,
                            "depth": depth, "actions": len(actions)})
            for registered, is_feed in actions:
                if only is not None and registered.name not in only:
                    continue
                started = time.perf_counter()
                if is_feed:
                    results = registered.runtime.feed(current_event)
                    elapsed = time.perf_counter() - started
                    self.metrics.query(registered.name).record(
                        1, len(results), elapsed,
                        current_event.timestamp)
                    if tracer is not None:
                        tracer.record(
                            "scan", query=registered.name,
                            stream=current_stream,
                            ts=current_event.timestamp, duration=elapsed,
                            detail={"event_type": current_event.type,
                                    "results": len(results)})
                        if results:
                            tracer.record(
                                "construct", query=registered.name,
                                stream=current_stream,
                                ts=current_event.timestamp,
                                detail={"matches": len(results)})
                    if slow is not None and elapsed >= slow.threshold:
                        slow.record(registered.name, current_event,
                                    elapsed, len(results))
                else:
                    results = registered.runtime.advance(
                        current_event.timestamp)
                    if results:
                        elapsed = time.perf_counter() - started
                        self.metrics.query(registered.name).record(
                            0, len(results), elapsed,
                            current_event.timestamp)
                        if tracer is not None:
                            tracer.record(
                                "advance", query=registered.name,
                                stream=current_stream,
                                ts=current_event.timestamp,
                                duration=elapsed,
                                detail={"released": len(results)})
                for result in results:
                    produced.append((registered.name, result))
                    if tracer is not None:
                        tracer.record(
                            "return", query=registered.name,
                            stream=result.stream, ts=result.end,
                            detail={"attributes":
                                    dict(result.attributes)})
                    if result.stream is not None:
                        if tracer is not None:
                            tracer.record(
                                "cascade", query=registered.name,
                                stream=result.stream, ts=result.end,
                                detail={"depth": depth + 1})
                        pending.append((result.stream, result.to_event(),
                                        depth + 1))
        return produced

    def _dispatch_actions(self, stream: str, event_type: str) \
            -> list[tuple[RegisteredQuery, bool]]:
        """The ordered ``(query, is_feed)`` actions for one event on
        *stream* with *event_type*.  Registration order is preserved so
        result ordering is identical with the index on or off."""
        if not self._use_dispatch_index:
            return [(registered, True)
                    for registered in self._queries.values()
                    if registered.input_stream == stream]
        key = (stream, event_type)
        actions = self._dispatch_cache.get(key)
        if actions is None:
            actions = []
            for registered in self._queries.values():
                if registered.input_stream != stream:
                    continue
                types = self._subscribed_types(registered)
                if types is None or event_type in types:
                    actions.append((registered, True))
                elif registered.compiled.analyzed.has_negation:
                    # Not subscribed, but its pending trailing-negation
                    # matches must still see time move forward.
                    actions.append((registered, False))
            self._dispatch_cache[key] = actions
        return actions

    @staticmethod
    def _subscribed_types(registered: RegisteredQuery) \
            -> frozenset[str] | None:
        """The event types *registered* must observe (positive plus
        negated components), or None when it must see every type."""
        types: set[str] = set()
        for component in registered.compiled.analyzed.components:
            event_types = component.event_types
            if not event_types:
                return None  # untyped component: any-type bucket
            types.update(event_types)
        return frozenset(types)

    def advance_time(self, watermark: float,
                     only: frozenset | set | None = None) \
            -> list[tuple[str, CompositeEvent]]:
        """Advance stream time for every (selected) query without feeding
        an event, releasing pending trailing-negation matches.  Used by
        shard workers processing broadcast watermark ticks."""
        tracer = self._tracer
        produced: list[tuple[str, CompositeEvent]] = []
        for registered in self._queries.values():
            if only is not None and registered.name not in only:
                continue
            started = time.perf_counter()
            results = registered.runtime.advance(watermark)
            if results:
                elapsed = time.perf_counter() - started
                self.metrics.query(registered.name).record(
                    0, len(results), elapsed, watermark)
                if tracer is not None:
                    tracer.record(
                        "advance", query=registered.name, ts=watermark,
                        duration=elapsed,
                        detail={"released": len(results)})
            for result in results:
                produced.append((registered.name, result))
                if tracer is not None:
                    tracer.record(
                        "return", query=registered.name,
                        stream=result.stream, ts=result.end,
                        detail={"attributes": dict(result.attributes)})
        return produced

    def _deliver(self, registered: RegisteredQuery,
                 result: CompositeEvent) -> None:
        registered.results_produced += 1
        if registered.on_result is not None:
            registered.on_result(registered.name, result)

    def set_delivery_filter(
            self, accept: Callable[[str, CompositeEvent],
                                   bool] | None) -> None:
        """Install a gate every emitted match must pass to be delivered
        (callbacks fired, result returned).  The persistence manager
        uses it to suppress already-durable matches during crash
        recovery, making restart exactly-once."""
        self._delivery_filter = accept

    def set_persistence_hooks(
            self, log: Callable[[Event], Any] | None,
            post: Callable[[], Any] | None) -> None:
        """Fuse the durability write path into :meth:`feed`: *log* runs
        for every live event before it is processed (the WAL append),
        *post* runs after delivery and returns any matches a due
        checkpoint's drain barrier released.  The persistence manager
        installs these after recovery completes — never during replay —
        and removes them on close."""
        self._persist_log = log
        self._persist_post = post

    def _deliver_all(self, emitted: list[tuple[str, CompositeEvent]]) \
            -> list[tuple[str, CompositeEvent]]:
        accept = self._delivery_filter
        if accept is None:
            for name, result in emitted:
                self._deliver(self._queries[name], result)
            return emitted
        delivered: list[tuple[str, CompositeEvent]] = []
        for name, result in emitted:
            if accept(name, result):
                self._deliver(self._queries[name], result)
                delivered.append((name, result))
        return delivered

    def drain(self) -> list[tuple[str, CompositeEvent]]:
        """Checkpoint barrier: force every in-flight sharded batch to
        completion and deliver the released results.  A no-op (empty
        list) on the synchronous runtime."""
        if self._router is None:
            return []
        return self._deliver_all(self._router.drain())

    def close(self) -> None:
        """Release runtime resources: bounded shutdown of any shard
        workers, even wedged ones.  Unlike :meth:`flush` this emits
        nothing; after closing, ``feed`` fails loudly.  Idempotent."""
        if self._router is not None:
            self._router.close()

    @property
    def degraded(self) -> bool:
        """True once any shard was lost or shed work under supervision;
        results carry ``complete=False`` from that point on."""
        return bool(self._router is not None
                    and getattr(self._router, "degraded", False))

    def feed_many(self, events: Iterable[Event]) \
            -> list[tuple[str, CompositeEvent]]:
        produced: list[tuple[str, CompositeEvent]] = []
        for event in events:
            produced.extend(self.feed(event))
        return produced

    def feed_batch(self, events: Iterable[Event],
                   stream: str = DEFAULT_STREAM) \
            -> list[tuple[str, CompositeEvent]]:
        """Push a batch of events through every query reading *stream*
        in one call, result-identical to feeding them one at a time
        (same results, same order).

        The batched dataflow engages when no per-event hook is installed
        (tracer, slow-feed log, persistence WAL) and no registered query
        cascades via INTO; otherwise the batch silently degrades to the
        per-event path, so callers can batch unconditionally.  Delivery
        callbacks fire after the whole batch is scanned; registration
        changes from inside a callback are rejected mid-batch.
        """
        events = list(events)
        if not events:
            return []
        if not self._batch_fast_path():
            produced: list[tuple[str, CompositeEvent]] = []
            for event in events:
                produced.extend(self.feed(event))
            return produced
        self._in_batch = True
        try:
            if self._sharding is not None and self._sharding.active:
                emitted = self._ensure_router().feed_batch(events, stream)
            else:
                emitted = []
                for bucket in self._run_queries_batch(events, stream):
                    emitted.extend(bucket)
            return self._deliver_all(emitted)
        finally:
            self._in_batch = False

    def feed_batch_grouped(self, events: list[Event],
                           stream: str = DEFAULT_STREAM) \
            -> list[list[tuple[str, CompositeEvent]]]:
        """Like :meth:`feed_batch` but returns one result list per input
        event — shard workers use this to tag results with the arrival
        number of the event that produced them.  Not available under an
        active sharding configuration (the router owns event order)."""
        if not events:
            return []
        if self._sharding is not None and self._sharding.active:
            raise SaseError(
                "feed_batch_grouped is for synchronous processors; "
                "the sharded path groups by seq in the router")
        if not self._batch_fast_path():
            return [self.feed(event, stream) for event in events]
        self._in_batch = True
        try:
            buckets = self._run_queries_batch(events, stream)
            return [self._deliver_all(bucket) for bucket in buckets]
        finally:
            self._in_batch = False

    def _batch_fast_path(self) -> bool:
        """True when batched execution is observably identical to the
        per-event path: no per-event hooks, and (synchronous runtime
        only) no INTO cascades — cascade composites must interleave with
        their triggering events."""
        if self._tracer is not None or self._slow_log is not None:
            return False
        if self._persist_log is not None or self._persist_post is not None:
            return False
        if self._sharding is not None and self._sharding.active:
            return True  # the router sequences events internally
        return all(registered.output_stream is None
                   for registered in self._queries.values())

    def _run_queries_batch(self, events: list[Event], stream: str) \
            -> list[list[tuple[str, CompositeEvent]]]:
        """The batched synchronous dataflow (no cascades): each query
        reads its subscribed slice of the batch through the runtime's
        batch path, and results are reassembled per event in
        registration order — exactly what N ``_run_queries`` calls
        would have produced."""
        per_event: list[list[tuple[str, CompositeEvent]]] = \
            [[] for _ in events]
        metrics = self.metrics
        for registered in self._queries.values():
            if registered.input_stream != stream:
                continue
            name = registered.name
            runtime = registered.runtime
            types = self._subscribed_types(registered) \
                if self._use_dispatch_index else None
            if registered.compiled.analyzed.has_negation:
                # Negation interleaves event observation with watermark
                # advances; replicate the per-event dispatch exactly.
                for slot, event in enumerate(events):
                    started = time.perf_counter()
                    if types is None or event.type in types:
                        results = runtime.feed(event)
                        elapsed = time.perf_counter() - started
                        metrics.query(name).record(
                            1, len(results), elapsed, event.timestamp)
                    else:
                        results = runtime.advance(event.timestamp)
                        if results:
                            elapsed = time.perf_counter() - started
                            metrics.query(name).record(
                                0, len(results), elapsed, event.timestamp)
                    bucket = per_event[slot]
                    for result in results:
                        bucket.append((name, result))
                continue
            if types is None:
                slots: list[int] | range = range(len(events))
                fed = events
            else:
                slots = [index for index, event in enumerate(events)
                         if event.type in types]
                if not slots:
                    continue
                fed = [events[index] for index in slots]
            started = time.perf_counter()
            grouped = runtime.feed_batch_grouped(fed)
            elapsed = time.perf_counter() - started
            total = 0
            last_ts: float | None = None
            for slot, event, results in zip(slots, fed, grouped):
                if results:
                    total += len(results)
                    if last_ts is None or event.timestamp > last_ts:
                        last_ts = event.timestamp
                    bucket = per_event[slot]
                    for result in results:
                        bucket.append((name, result))
            metrics.query(name).record(len(fed), total, elapsed, last_ts)
        return per_event

    def flush(self) -> list[tuple[str, CompositeEvent]]:
        """End of stream: release pending trailing-negation matches.

        Queries flush in cascade order (producers before their INTO
        consumers) so composite events released at flush time still reach
        downstream queries before those flush themselves.
        """
        if self._router is not None:
            # The router stays attached after flushing: its own guard
            # makes a later feed fail loudly, matching the classic
            # runtime's "already flushed" behaviour.
            return self._deliver_all(self._router.flush())
        produced = [(name, result)
                    for name, result, _ in self._flush_queries()]
        return self._deliver_all(produced)

    def _flush_queries(self, only: frozenset | set | None = None) \
            -> list[tuple[str, CompositeEvent, int]]:
        """Flush every (selected) query in cascade order.

        Returns ``(name, result, trigger_rank)`` triples where
        ``trigger_rank`` is the flush-order rank of the query whose flush
        released the result (cascade results carry their trigger's rank,
        keeping them glued behind it for deterministic merging).
        """
        produced: list[tuple[str, CompositeEvent, int]] = []
        order = self._flush_order()
        ranks = {registered.name: rank
                 for rank, registered in enumerate(order)}
        flushed: set[str] = set()
        if only is not None:
            # Queries flushed elsewhere (on worker shards) must not
            # receive late-routed composites here.
            flushed.update(name for name in self._queries
                           if name not in only)
        for registered in order:
            if only is not None and registered.name not in only:
                continue
            rank = ranks[registered.name]
            for result in registered.runtime.flush():
                produced.append((registered.name, result, rank))
                if result.stream is not None:
                    self._route_late(result.stream, result.to_event(),
                                     flushed, produced, depth=0,
                                     trigger_rank=rank)
            flushed.add(registered.name)
        return produced

    def flush_ranks(self) -> dict[str, int]:
        """Each query's global flush-order rank (producers first)."""
        return {registered.name: rank
                for rank, registered in enumerate(self._flush_order())}

    def _route_late(self, stream: str, event: Event, flushed: set[str],
                    produced: list[tuple[str, CompositeEvent, int]],
                    depth: int, trigger_rank: int) -> None:
        if depth > self.MAX_CASCADE_DEPTH:
            raise SaseError(
                f"query cascade exceeded {self.MAX_CASCADE_DEPTH} levels "
                f"during flush on stream {stream!r}")
        for registered in self._queries.values():
            if registered.input_stream != stream or \
                    registered.name in flushed:
                continue
            for result in registered.runtime.feed(event):
                produced.append((registered.name, result, trigger_rank))
                if result.stream is not None:
                    self._route_late(result.stream, result.to_event(),
                                     flushed, produced, depth + 1,
                                     trigger_rank)

    def _flush_order(self) -> list[RegisteredQuery]:
        """Producers before consumers: order queries by their stream depth
        (DEFAULT at depth 0, a query publishing INTO a stream puts that
        stream one level deeper)."""
        depth: dict[str, int] = {self.DEFAULT_STREAM: 0}
        changed = True
        iterations = 0
        while changed and iterations <= len(self._queries) + 1:
            changed = False
            iterations += 1
            for registered in self._queries.values():
                source = depth.get(registered.input_stream)
                target = registered.output_stream
                if source is not None and target is not None:
                    proposed = source + 1
                    if depth.get(target, -1) < proposed:
                        depth[target] = min(proposed,
                                            self.MAX_CASCADE_DEPTH)
                        changed = changed or \
                            depth[target] != self.MAX_CASCADE_DEPTH
        return sorted(self._queries.values(),
                      key=lambda registered: depth.get(
                          registered.input_stream, 0))

    # -- sharded execution ----------------------------------------------------

    def _ensure_router(self):
        if self._router is None:
            from repro.sharding.router import ShardRouter
            self._router = ShardRouter(self, self._sharding)
        return self._router

    @property
    def shard_plan(self):
        """The shardability plan in effect (None until sharded feeding
        starts)."""
        return self._router.plan if self._router is not None else None

    @property
    def engine_config(self) -> PlanConfig:
        return self._engine.config

    @property
    def use_dispatch_index(self) -> bool:
        """Whether the type-dispatch subscription index is active."""
        return self._use_dispatch_index

    @property
    def registry(self) -> SchemaRegistry:
        return self._engine.registry
