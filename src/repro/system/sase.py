"""The fully wired SASE system (Figure 1).

``SaseSystem`` owns every layer: the store layout and simulated readers at
the bottom, the five-stage cleaning pipeline, the complex event processor
with its continuous queries, the event database, and observation taps for
the UI panels.  ``process_tick`` moves one scan's raw readings through the
whole stack; ``run_simulation`` drives a scripted scenario end to end.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, TYPE_CHECKING

from repro.cleaning.pipeline import CleaningConfig, CleaningPipeline
from repro.core.plan import PlanConfig
from repro.db.eventdb import EventDatabase
from repro.events.event import CompositeEvent, Event
from repro.events.model import SchemaRegistry
from repro.funcs.registry import FunctionRegistry, default_registry
from repro.ons.service import ObjectNameService
from repro.rfid.layout import StoreLayout
from repro.rfid.simulator import RawReading
from repro.schemas import retail_registry
from repro.system.context import SystemContext
from repro.system.processor import ComplexEventProcessor, QueryKind, \
    RegisteredQuery

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.persist.config import PersistenceConfig
    from repro.persist.manager import RecoveryReport
    from repro.resilience.config import ResilienceConfig
    from repro.sharding.config import ShardingConfig


@dataclass
class SystemTaps:
    """Observation points for the UI (the right-hand panels of Figure 3)."""

    cleaning_output: list[Event] = field(default_factory=list)
    stream_results: list[tuple[str, CompositeEvent]] = field(
        default_factory=list)
    database_reports: list[str] = field(default_factory=list)
    messages: list[str] = field(default_factory=list)
    limit: int = 1000

    def _trim(self, items: list) -> None:
        if len(items) > self.limit:
            del items[:len(items) - self.limit]

    def record_events(self, events: Iterable[Event]) -> None:
        self.cleaning_output.extend(events)
        self._trim(self.cleaning_output)

    def record_result(self, name: str, result: CompositeEvent) -> None:
        self.stream_results.append((name, result))
        self._trim(self.stream_results)

    def record_report(self, text: str) -> None:
        self.database_reports.append(text)
        self._trim(self.database_reports)

    def record_message(self, text: str) -> None:
        self.messages.append(text)
        self._trim(self.messages)


class SaseSystem:
    """All SASE layers wired together."""

    def __init__(self, layout: StoreLayout, ons: ObjectNameService,
                 registry: SchemaRegistry | None = None,
                 cleaning_config: CleaningConfig | None = None,
                 plan_config: PlanConfig | None = None,
                 functions: FunctionRegistry | None = None,
                 event_db: EventDatabase | None = None,
                 sharding: "ShardingConfig | None" = None,
                 persistence: "PersistenceConfig | None" = None,
                 resilience: "ResilienceConfig | None" = None,
                 ingest_batch: int = 1):
        self.layout = layout
        self.ons = ons
        self.registry = registry or retail_registry()
        self.event_db = event_db or EventDatabase()
        self.context = SystemContext(event_db=self.event_db, ons=ons)
        self.functions = functions or default_registry()
        # Resilience layer (default off): quarantine at the cleaning
        # boundary, seeded chaos injection, shard supervision via the
        # router, transient-I/O retry inside persistence.
        self.resilience = resilience
        self.dead_letters = None
        self._injector = None
        if resilience is not None:
            from repro.resilience import DeadLetterQueue, FaultInjector
            if resilience.quarantine or resilience.dead_letter_path:
                self.dead_letters = DeadLetterQueue(
                    resilience.dead_letter_path)
                self.dead_letters.on_record = self._on_dead_letter
            chaos = resilience.chaos_config()
            if chaos is not None:
                self._injector = FaultInjector(chaos, scope="system",
                                               on_fault=self._on_fault)
        self.cleaning = CleaningPipeline(layout, ons, cleaning_config,
                                         quarantine=self.dead_letters)
        self.processor = ComplexEventProcessor(
            self.registry, functions=self.functions, system=self.context,
            config=plan_config, sharding=sharding, resilience=resilience)
        # Batch size for feeding cleaned events into the processor
        # (1 = legacy per-event path).  Composes with router batching
        # under sharding: the router still seals shard batches at its
        # own batch_size, the caller batch only amortizes dispatch.
        self.ingest_batch = max(1, ingest_batch)
        self.taps = SystemTaps()
        self._message_formatters: dict[str, Callable[[CompositeEvent],
                                                     str]] = {}
        self._exporter = None
        self._sync_reference_data(self.event_db)
        self.persistence = None
        if persistence is not None:
            from repro.persist.manager import PersistenceManager
            self.persistence = PersistenceManager(persistence, self,
                                                  injector=self._injector)

    def _sync_reference_data(self, event_db: EventDatabase) -> None:
        """Mirror layout areas and ONS products into *event_db* so
        RETURN-clause lookups (``_retrieveLocation``) can answer."""
        for area in self.layout.areas.values():
            event_db.register_area(area.area_id, area.kind.value,
                                   area.description)
        for record in self.ons:
            event_db.register_product(
                record.tag_id, record.product_name,
                category=record.category, price=record.price,
                expiration_date=record.expiration_date,
                saleable=record.saleable)

    # -- persistence hooks ----------------------------------------------------

    def recover(self) -> "RecoveryReport | None":
        """Run crash recovery against the configured data directory:
        restore the latest checkpoint, replay the WAL with exactly-once
        suppression, and re-fire callbacks for the suppressed (already
        durable) matches so the taps reflect the full history.  Returns
        the report, or None when persistence is off.  Call after
        registering queries, before the first live event."""
        if self.persistence is None:
            return None
        report = self.persistence.recover()
        for name, result in report.suppressed_matches:
            self.processor._deliver(self.processor.query(name), result)
        return report

    def adopt_event_db(self, event_db: EventDatabase) -> None:
        """Swap the live event database (checkpoint restoration).  The
        system context is shared with every query runtime, so built-in
        functions see the new database immediately."""
        self.event_db = event_db
        self.context.event_db = event_db

    def scratch_event_db(self) -> EventDatabase:
        """A throwaway database pre-seeded with reference data, used by
        recovery to absorb archiving-rule writes while warming engines
        over pre-checkpoint WAL records."""
        scratch = EventDatabase()
        self._sync_reference_data(scratch)
        return scratch

    def on_replayed_event(self, event: Event) -> None:
        """Recovery observer: replayed events reach the cleaning-output
        tap just as live ones do."""
        self.taps.record_events((event,))

    # -- query registration ---------------------------------------------------

    def register_monitoring_query(
            self, name: str, query: str,
            message: Callable[[CompositeEvent], str] | None = None) \
            -> RegisteredQuery:
        """Register a monitoring query; detections appear on the stream
        results tap and, via *message*, in the Message Results panel."""
        if message is not None:
            self._message_formatters[name] = message
        return self.processor.register(name, query, QueryKind.MONITORING,
                                       on_result=self._on_result)

    def register_archiving_rule(self, name: str,
                                query: str) -> RegisteredQuery:
        """Register a data-transformation rule for archiving."""
        return self.processor.register(name, query,
                                       QueryKind.ARCHIVING_RULE,
                                       on_result=self._on_rule_result)

    def _on_result(self, name: str, result: CompositeEvent) -> None:
        self.taps.record_result(name, result)
        formatter = self._message_formatters.get(name)
        if formatter is not None:
            self.taps.record_message(formatter(result))
        else:
            attrs = ", ".join(f"{key}={value}" for key, value
                              in result.attributes.items())
            self.taps.record_message(f"[{name}] {attrs}")

    def _on_rule_result(self, name: str, result: CompositeEvent) -> None:
        attrs = ", ".join(f"{key}={value}" for key, value
                          in result.attributes.items())
        self.taps.record_report(f"[{name}] database update: {attrs}")
        tracer = self.processor.tracer
        if tracer is not None:
            tracer.record("db_write", query=name, ts=result.end,
                          detail={"attributes": dict(result.attributes)})

    # -- resilience hooks ---------------------------------------------------------

    @property
    def injector(self):
        """The system-scope chaos injector, or None (chaos off)."""
        return self._injector

    def _on_fault(self, site: str, count: int) -> None:
        tracer = self.processor.tracer
        if tracer is not None:
            tracer.record("fault", detail={"site": site, "count": count},
                          trace_id=-1)

    def _on_dead_letter(self, record) -> None:
        tracer = self.processor.tracer
        if tracer is not None:
            tracer.record("quarantine", ts=record.ingest_time,
                          detail={"stage": record.stage,
                                  "error": record.error},
                          trace_id=-1)

    def close(self) -> None:
        """Shut the system down: bounded shard-worker shutdown (a wedged
        worker cannot hang this), then persistence and the dead-letter
        file.  Emits nothing; use ``processor.flush()`` first when the
        remaining matches are wanted.  Idempotent."""
        self.processor.close()
        if self.persistence is not None:
            self.persistence.close()
        if self.dead_letters is not None:
            self.dead_letters.close()

    # -- observability ------------------------------------------------------------

    def enable_tracing(self, capacity: int = 4096):
        """Turn on dataflow tracing for the whole system: cleaning-tick
        spans plus the processor's per-event operator spans."""
        return self.processor.enable_tracing(capacity)

    def attach_exporter(self, exporter) -> None:
        """Attach a :class:`~repro.obs.export.MetricsExporter`; its tick
        cadence is driven by processed events, so a long-running system
        flushes metrics periodically without caller bookkeeping."""
        self._exporter = exporter

    @property
    def exporter(self):
        return self._exporter

    # -- data flow ----------------------------------------------------------------

    def process_tick(self, readings: Iterable[RawReading], now: float) \
            -> list[tuple[str, CompositeEvent]]:
        """One scan tick: raw readings -> cleaning -> processor."""
        injector = self._injector
        if injector is not None and injector.armed("ingest."):
            from repro.resilience.chaos import mangle_readings
            readings = mangle_readings(injector, list(readings))
        tracer = self.processor.tracer
        if tracer is not None:
            readings = list(readings)
            started = time.perf_counter()
            events = self.cleaning.process_tick(readings, now)
            # Tick-level spans precede any event's trace context, so they
            # carry the TICK_CONTEXT id (-1): cleaning smooths/filters the
            # raw readings, association resolves tags to products and
            # emits the typed events about to be fed.
            tracer.record("clean", ts=now,
                          duration=time.perf_counter() - started,
                          detail={"readings": len(readings),
                                  "events": len(events)},
                          trace_id=-1)
            if events:
                tracer.record("associate", ts=now,
                              detail={"event_types": sorted(
                                  {event.type for event in events})},
                              trace_id=-1)
        else:
            events = self.cleaning.process_tick(readings, now)
        produced: list[tuple[str, CompositeEvent]] = []
        persistence = self.persistence
        fed: list[Event] = []
        if persistence is not None:
            # The WAL append and checkpoint cadence are fused into
            # processor.feed (set_persistence_hooks); this guard is the
            # per-tick stand-in for the per-event checks they replaced.
            persistence.require_live()
        for event in events:
            if persistence is not None and persistence.should_skip(event):
                continue  # already replayed from the WAL
            fed.append(event)
        if self.ingest_batch > 1:
            for start in range(0, len(fed), self.ingest_batch):
                produced.extend(self.feed_batch(
                    fed[start:start + self.ingest_batch]))
        else:
            for event in fed:
                produced.extend(self.processor.feed(event))
        self.taps.record_events(fed)
        if self._exporter is not None and fed:
            self._exporter.tick(len(fed))
        return produced

    def feed_batch(self, events: list[Event]) \
            -> list[tuple[str, CompositeEvent]]:
        """Feed a batch of already-cleaned events to the processor in
        one call (result-identical to per-event feeding; see
        :meth:`ComplexEventProcessor.feed_batch`)."""
        return self.processor.feed_batch(events)

    def run_simulation(self,
                       ticks: Iterable[tuple[float, list[RawReading]]],
                       flush: bool = True) \
            -> list[tuple[str, CompositeEvent]]:
        """Drive a whole simulated scenario through the system."""
        produced: list[tuple[str, CompositeEvent]] = []
        for now, readings in ticks:
            produced.extend(self.process_tick(readings, now))
        if flush:
            produced.extend(self.processor.flush())
            if self.persistence is not None:
                # End of stream: the flush results above went through
                # the delivery gate into the out log; seal the run with
                # a final checkpoint.
                produced.extend(self.persistence.finalize())
        return produced

    # -- ad-hoc database access -------------------------------------------------

    def query_database(self, sql: str) -> list[dict]:
        """Ad-hoc SQL over the event database (the UI's bottom pane)."""
        rows = self.event_db.db.query(sql)
        self.taps.record_report(f"[ad-hoc] {sql.strip()} -> {len(rows)} "
                                f"row(s)")
        return rows
