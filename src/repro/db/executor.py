"""Statement execution over the storage layer.

NULL semantics are deliberately simple (and documented): any comparison
involving NULL is false, arithmetic with NULL yields NULL, and aggregates
skip NULLs (COUNT(*) counts rows).  This matches what the SASE system needs
from its event database.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

import re

from repro.db.sql_parser import (
    ColRef,
    CreateIndexStmt,
    CreateTableStmt,
    DeleteStmt,
    DropTableStmt,
    InsertStmt,
    SelectStmt,
    SqlAggregate,
    SqlBetween,
    SqlBinary,
    SqlExpr,
    SqlIn,
    SqlIsNull,
    SqlLike,
    SqlLiteral,
    SqlOp,
    SqlUnary,
    Statement,
    UpdateStmt,
)
from repro.db.storage import Table
from repro.errors import SqlError, TableError


@dataclass
class ResultSet:
    """Columns and rows returned by a statement.

    DML statements return an empty-column result with ``affected`` set.
    """

    columns: list[str]
    rows: list[tuple[Any, ...]]
    affected: int = 0

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def first(self) -> tuple[Any, ...] | None:
        return self.rows[0] if self.rows else None

    def scalar(self) -> Any:
        """The single value of a single-row, single-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise SqlError(
                f"scalar() needs a 1x1 result, got "
                f"{len(self.rows)}x{len(self.columns)}")
        return self.rows[0][0]

    def as_dicts(self) -> list[dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]


class _Env:
    """Column resolution for one combined row across FROM tables."""

    __slots__ = ("frames",)

    def __init__(self, frames: list[tuple[str, Table, Sequence[Any]]]):
        # each frame: (alias, table, row values)
        self.frames = frames

    def resolve(self, ref: ColRef) -> Any:
        if ref.table is not None:
            for alias, table, row in self.frames:
                if alias.lower() == ref.table.lower():
                    return row[table.column_position(ref.column)]
            raise SqlError(f"unknown table alias {ref.table!r}")
        hits = [(table, row) for _, table, row in self.frames
                if table.has_column(ref.column)]
        if not hits:
            raise SqlError(f"unknown column {ref.column!r}")
        if len(hits) > 1:
            raise SqlError(f"ambiguous column {ref.column!r}; qualify it")
        table, row = hits[0]
        return row[table.column_position(ref.column)]


def _contains_aggregate(expr: SqlExpr) -> bool:
    if isinstance(expr, SqlAggregate):
        return True
    if isinstance(expr, SqlBinary):
        return _contains_aggregate(expr.left) or \
            _contains_aggregate(expr.right)
    if isinstance(expr, (SqlUnary, SqlIsNull, SqlBetween, SqlIn,
                         SqlLike)):
        return _contains_aggregate(expr.operand)
    return False


def _like_matches(pattern: str, value: str) -> bool:
    """SQL LIKE: ``%`` matches any run, ``_`` any single character."""
    regex = "".join(
        ".*" if character == "%" else
        "." if character == "_" else
        re.escape(character)
        for character in pattern)
    return re.fullmatch(regex, value, flags=re.DOTALL) is not None


def _evaluate(expr: SqlExpr, env: _Env) -> Any:
    if isinstance(expr, SqlLiteral):
        return expr.value
    if isinstance(expr, ColRef):
        return env.resolve(expr)
    if isinstance(expr, SqlIsNull):
        is_null = _evaluate(expr.operand, env) is None
        return (not is_null) if expr.negated else is_null
    if isinstance(expr, SqlUnary):
        value = _evaluate(expr.operand, env)
        if expr.op == "NOT":
            return not bool(value)
        return None if value is None else -value
    if isinstance(expr, SqlAggregate):
        raise SqlError("aggregate used outside an aggregating SELECT")
    if isinstance(expr, SqlBetween):
        value = _evaluate(expr.operand, env)
        low = _evaluate(expr.low, env)
        high = _evaluate(expr.high, env)
        if value is None or low is None or high is None:
            return False
        try:
            inside = low <= value <= high
        except TypeError:
            raise SqlError(
                f"cannot compare {value!r} with BETWEEN bounds") from None
        return (not inside) if expr.negated else inside
    if isinstance(expr, SqlIn):
        value = _evaluate(expr.operand, env)
        if value is None:
            return False
        choices = [_evaluate(choice, env) for choice in expr.choices]
        inside = value in [c for c in choices if c is not None]
        return (not inside) if expr.negated else inside
    if isinstance(expr, SqlLike):
        value = _evaluate(expr.operand, env)
        if value is None:
            return False
        if not isinstance(value, str):
            raise SqlError(f"LIKE applies to text, got {value!r}")
        matched = _like_matches(expr.pattern, value)
        return (not matched) if expr.negated else matched
    assert isinstance(expr, SqlBinary)
    if expr.op is SqlOp.AND:
        return bool(_evaluate(expr.left, env)) and \
            bool(_evaluate(expr.right, env))
    if expr.op is SqlOp.OR:
        return bool(_evaluate(expr.left, env)) or \
            bool(_evaluate(expr.right, env))
    left = _evaluate(expr.left, env)
    right = _evaluate(expr.right, env)
    if expr.op in (SqlOp.EQ, SqlOp.NEQ, SqlOp.LT, SqlOp.LTE,
                   SqlOp.GT, SqlOp.GTE):
        if left is None or right is None:
            return False
        try:
            if expr.op is SqlOp.EQ:
                return left == right
            if expr.op is SqlOp.NEQ:
                return left != right
            if expr.op is SqlOp.LT:
                return left < right
            if expr.op is SqlOp.LTE:
                return left <= right
            if expr.op is SqlOp.GT:
                return left > right
            return left >= right
        except TypeError:
            raise SqlError(
                f"cannot compare {left!r} with {right!r}") from None
    if left is None or right is None:
        return None
    try:
        if expr.op is SqlOp.ADD:
            return left + right
        if expr.op is SqlOp.SUB:
            return left - right
        if expr.op is SqlOp.MUL:
            return left * right
        if expr.op is SqlOp.MOD:
            return left % right
        if right == 0:
            raise SqlError("division by zero")
        return left / right
    except TypeError:
        raise SqlError(f"arithmetic failed on {left!r}, {right!r}") from None


def _evaluate_aggregated(expr: SqlExpr, group: list[_Env]) -> Any:
    """Evaluate an expression that may contain aggregates over a group."""
    if isinstance(expr, SqlAggregate):
        if expr.arg is None:  # COUNT(*)
            return len(group)
        values = [value for value in
                  (_evaluate(expr.arg, env) for env in group)
                  if value is not None]
        if expr.func == "COUNT":
            return len(values)
        if not values:
            return None
        if expr.func == "SUM":
            return sum(values)
        if expr.func == "AVG":
            return sum(values) / len(values)
        if expr.func == "MIN":
            return min(values)
        return max(values)
    if isinstance(expr, SqlBinary):
        if expr.op in (SqlOp.AND, SqlOp.OR):
            raise SqlError("logical operators over aggregates are not "
                           "supported in SELECT items")
        left = _evaluate_aggregated(expr.left, group)
        right = _evaluate_aggregated(expr.right, group)
        if left is None or right is None:
            return None
        return _evaluate(SqlBinary(expr.op, SqlLiteral(left),
                                   SqlLiteral(right)),
                         _Env([]))
    if isinstance(expr, SqlUnary):
        value = _evaluate_aggregated(expr.operand, group)
        if expr.op == "NOT":
            return not bool(value)
        return None if value is None else -value
    if not group:
        raise SqlError("cannot evaluate a non-aggregate item over an "
                       "empty group")
    return _evaluate(expr, group[0])


@dataclass
class Executor:
    """Executes parsed statements against a table catalogue."""

    tables: dict[str, Table] = field(default_factory=dict)

    # -- catalogue ----------------------------------------------------------

    def table(self, name: str) -> Table:
        try:
            return self.tables[name.lower()]
        except KeyError:
            raise TableError(
                f"unknown table {name!r}; known tables: "
                f"{', '.join(sorted(self.tables)) or '(none)'}") from None

    # -- dispatch -----------------------------------------------------------

    def execute(self, statement: Statement) -> ResultSet:
        if isinstance(statement, SelectStmt):
            return self._select(statement)
        if isinstance(statement, InsertStmt):
            return self._insert(statement)
        if isinstance(statement, UpdateStmt):
            return self._update(statement)
        if isinstance(statement, DeleteStmt):
            return self._delete(statement)
        if isinstance(statement, CreateTableStmt):
            return self._create_table(statement)
        if isinstance(statement, CreateIndexStmt):
            table = self.table(statement.table)
            table.create_index(statement.column)
            return ResultSet([], [], affected=0)
        if isinstance(statement, DropTableStmt):
            name = statement.name.lower()
            if name not in self.tables:
                raise TableError(f"unknown table {statement.name!r}")
            del self.tables[name]
            return ResultSet([], [], affected=0)
        raise SqlError(f"unsupported statement {statement!r}")

    def explain(self, statement: Statement) -> list[str]:
        """Describe the access paths *statement* would use, without
        executing it."""
        if isinstance(statement, SelectStmt):
            frames = [(alias, self.table(name))
                      for name, alias in statement.tables]
            lines = []
            if len(frames) == 2 and statement.where is not None and \
                    self._try_index_join(frames, statement.where) \
                    is not None:
                lines.append(
                    f"index join: {frames[0][0]} with {frames[1][0]}")
            else:
                for alias, table in frames:
                    pinned = None
                    if len(frames) == 1:
                        pinned = _find_indexed_equality(
                            statement.where, alias, table)
                    if pinned is not None:
                        lines.append(
                            f"index lookup on {table.name}.{pinned[0]} "
                            f"= {pinned[1]!r}")
                    else:
                        lines.append(f"full scan of {table.name} "
                                     f"({len(table)} rows)")
            if statement.group_by or any(
                    _contains_aggregate(item.expr)
                    for item in statement.items):
                lines.append("aggregate")
            if statement.order_by:
                lines.append("sort")
            if statement.limit is not None:
                lines.append(f"limit {statement.limit}")
            return lines
        if isinstance(statement, (UpdateStmt, DeleteStmt)):
            table = self.table(statement.table)
            pinned = _find_indexed_equality(statement.where,
                                            statement.table, table)
            verb = "update" if isinstance(statement, UpdateStmt) \
                else "delete"
            if pinned is not None:
                return [f"{verb} via index lookup on "
                        f"{table.name}.{pinned[0]} = {pinned[1]!r}"]
            return [f"{verb} via full scan of {table.name} "
                    f"({len(table)} rows)"]
        return [f"direct: {type(statement).__name__}"]

    # -- DDL / DML ------------------------------------------------------------

    def _create_table(self, statement: CreateTableStmt) -> ResultSet:
        name = statement.name.lower()
        if name in self.tables:
            raise TableError(f"table {statement.name!r} already exists")
        self.tables[name] = Table(statement.name, statement.columns)
        return ResultSet([], [], affected=0)

    def _insert(self, statement: InsertStmt) -> ResultSet:
        table = self.table(statement.table)
        empty = _Env([])
        count = 0
        for row_exprs in statement.rows:
            values = [_evaluate(expr, empty) for expr in row_exprs]
            if statement.columns is not None:
                if len(values) != len(statement.columns):
                    raise SqlError(
                        f"INSERT has {len(statement.columns)} columns but "
                        f"{len(values)} values")
                table.insert(dict(zip(statement.columns, values)))
            else:
                table.insert(values)
            count += 1
        return ResultSet([], [], affected=count)

    def _matching_rowids(self, table: Table, alias: str,
                         where: SqlExpr | None) -> list[int]:
        candidates = self._candidate_rows(table, alias, where)
        rowids = []
        for rowid, row in candidates:
            if where is None or bool(
                    _evaluate(where, _Env([(alias, table, row)]))):
                rowids.append(rowid)
        return rowids

    def _candidate_rows(self, table: Table, alias: str,
                        where: SqlExpr | None) \
            -> list[tuple[int, list[Any]]]:
        """Rows to test against *where* — an index lookup when an
        AND-conjunct pins an indexed column to a constant, else a scan."""
        pinned = _find_indexed_equality(where, alias, table)
        if pinned is not None:
            column, value = pinned
            return table.lookup(column, value)
        return list(table.rows())

    def _update(self, statement: UpdateStmt) -> ResultSet:
        table = self.table(statement.table)
        rowids = self._matching_rowids(table, statement.table,
                                       statement.where)
        for rowid in rowids:
            env = _Env([(statement.table, table, list(table.row(rowid)))])
            changes = {column: _evaluate(expr, env)
                       for column, expr in statement.assignments}
            table.update(rowid, changes)
        return ResultSet([], [], affected=len(rowids))

    def _delete(self, statement: DeleteStmt) -> ResultSet:
        table = self.table(statement.table)
        rowids = self._matching_rowids(table, statement.table,
                                       statement.where)
        for rowid in rowids:
            table.delete(rowid)
        return ResultSet([], [], affected=len(rowids))

    # -- SELECT ------------------------------------------------------------------

    def _select(self, statement: SelectStmt) -> ResultSet:
        frames = [(alias, self.table(name))
                  for name, alias in statement.tables]
        seen_aliases: set[str] = set()
        for alias, _ in frames:
            if alias.lower() in seen_aliases:
                raise SqlError(f"duplicate table alias {alias!r}")
            seen_aliases.add(alias.lower())

        envs = [env for env in self._scan(frames, statement.where)
                if statement.where is None
                or bool(_evaluate(statement.where, env))]

        aggregate_mode = bool(statement.group_by) or any(
            _contains_aggregate(item.expr) for item in statement.items)

        if aggregate_mode:
            columns, rows = self._project_aggregated(statement, envs)
        else:
            columns, rows = self._project_plain(statement, envs)
            if statement.order_by:
                keyed = [
                    ([_evaluate(expr, env)
                      for expr, _ in statement.order_by], row)
                    for env, row in zip(envs, rows)]
                # stable multi-pass sort: last key first
                for position in reversed(range(len(statement.order_by))):
                    descending = statement.order_by[position][1]
                    keyed.sort(key=lambda pair, p=position:
                               _sort_key(pair[0][p]), reverse=descending)
                rows = [row for _, row in keyed]

        if aggregate_mode and statement.order_by:
            rows = self._order_output(statement, columns, rows)
        if statement.distinct:
            unique: list[tuple[Any, ...]] = []
            seen: set[tuple[Any, ...]] = set()
            for row in rows:
                if row not in seen:
                    seen.add(row)
                    unique.append(row)
            rows = unique
        if statement.limit is not None:
            rows = rows[:statement.limit]
        return ResultSet(columns, rows)

    def _scan(self, frames: list[tuple[str, Table]],
              where: SqlExpr | None) -> list[_Env]:
        """Cross product of the FROM tables, with an index-accelerated path
        for the common single-equi-join two-table case."""
        if len(frames) == 2 and where is not None:
            fast = self._try_index_join(frames, where)
            if fast is not None:
                return fast
        envs: list[_Env] = [_Env([])]
        for alias, table in frames:
            if len(frames) == 1:
                rows = self._candidate_rows(table, alias, where)
            else:
                rows = list(table.rows())
            expanded = []
            for env in envs:
                for _, row in rows:
                    expanded.append(_Env(env.frames + [(alias, table, row)]))
            envs = expanded
        return envs

    def _try_index_join(self, frames: list[tuple[str, Table]],
                        where: SqlExpr | None) -> list[_Env] | None:
        """Use a hash index when the WHERE contains
        ``a.col = b.col`` and one side is indexed."""
        join = _find_equi_join(where, frames[0][0], frames[1][0])
        if join is None:
            return None
        (left_col, right_col) = join
        (left_alias, left_table) = frames[0]
        (right_alias, right_table) = frames[1]
        if right_table.index_for(right_col) is None and \
                left_table.index_for(left_col) is not None:
            # swap so the indexed side is the inner lookup
            left_alias, right_alias = right_alias, left_alias
            left_table, right_table = right_table, left_table
            left_col, right_col = right_col, left_col
        if right_table.index_for(right_col) is None:
            return None
        envs = []
        left_position = left_table.column_position(left_col)
        for _, left_row in left_table.rows():
            value = left_row[left_position]
            for _, right_row in right_table.lookup(right_col, value):
                envs.append(_Env([(left_alias, left_table, left_row),
                                  (right_alias, right_table, right_row)]))
        return envs

    def _project_plain(self, statement: SelectStmt,
                       envs: list[_Env]) -> tuple[list[str],
                                                  list[tuple[Any, ...]]]:
        if not statement.items:  # SELECT *
            columns: list[str] = []
            multi = len(statement.tables) > 1
            for name, alias in statement.tables:
                table = self.table(name)
                for column in table.column_names():
                    columns.append(f"{alias}.{column}" if multi else column)
            rows = []
            for env in envs:
                combined: list[Any] = []
                for _, _, row in env.frames:
                    combined.extend(row)
                rows.append(tuple(combined))
            return columns, rows
        columns = [_item_name(item.expr, item.alias, index)
                   for index, item in enumerate(statement.items)]
        rows = [tuple(_evaluate(item.expr, env)
                      for item in statement.items) for env in envs]
        return columns, rows

    def _project_aggregated(self, statement: SelectStmt,
                            envs: list[_Env]) -> tuple[list[str],
                                                       list[tuple[Any, ...]]]:
        if not statement.items:
            raise SqlError("SELECT * cannot be combined with aggregates")
        columns = [_item_name(item.expr, item.alias, index)
                   for index, item in enumerate(statement.items)]
        if statement.group_by:
            groups: dict[tuple[Any, ...], list[_Env]] = {}
            order: list[tuple[Any, ...]] = []
            for env in envs:
                key = tuple(_evaluate(ref, env)
                            for ref in statement.group_by)
                if key not in groups:
                    groups[key] = []
                    order.append(key)
                groups[key].append(env)
            rows = [tuple(_evaluate_aggregated(item.expr, groups[key])
                          for item in statement.items) for key in order]
        else:
            rows = [tuple(_evaluate_aggregated(item.expr, envs)
                          for item in statement.items)]
        return columns, rows

    def _order_output(self, statement: SelectStmt, columns: list[str],
                      rows: list[tuple[Any, ...]]) -> list[tuple[Any, ...]]:
        positions = []
        for expr, descending in statement.order_by:
            if not isinstance(expr, ColRef) or expr.table is not None:
                raise SqlError("ORDER BY with aggregates must name an "
                               "output column")
            try:
                positions.append((columns.index(expr.column), descending))
            except ValueError:
                raise SqlError(
                    f"ORDER BY column {expr.column!r} is not in the "
                    f"SELECT list") from None
        ordered = list(rows)
        for position, descending in reversed(positions):
            ordered.sort(key=lambda row, p=position: _sort_key(row[p]),
                         reverse=descending)
        return ordered


def _expr_is_constant(expr: SqlExpr) -> bool:
    if isinstance(expr, SqlLiteral):
        return True
    if isinstance(expr, SqlBinary):
        return _expr_is_constant(expr.left) and \
            _expr_is_constant(expr.right)
    if isinstance(expr, SqlUnary):
        return _expr_is_constant(expr.operand)
    return False


def _find_indexed_equality(expr: SqlExpr | None, alias: str,
                           table: Table) -> tuple[str, Any] | None:
    """Find an AND-conjunct ``col = <constant>`` over an indexed column of
    *table*; returns (column, value)."""
    if expr is None:
        return None
    if isinstance(expr, SqlBinary) and expr.op is SqlOp.AND:
        return (_find_indexed_equality(expr.left, alias, table)
                or _find_indexed_equality(expr.right, alias, table))
    if isinstance(expr, SqlBinary) and expr.op is SqlOp.EQ:
        for column_side, value_side in ((expr.left, expr.right),
                                        (expr.right, expr.left)):
            if not isinstance(column_side, ColRef):
                continue
            if column_side.table is not None and \
                    column_side.table.lower() != alias.lower():
                continue
            if not table.has_column(column_side.column):
                continue
            if table.index_for(column_side.column) is None:
                continue
            if _expr_is_constant(value_side):
                return (column_side.column,
                        _evaluate(value_side, _Env([])))
    return None


def _find_equi_join(expr: SqlExpr | None, left_alias: str,
                    right_alias: str) -> tuple[str, str] | None:
    """Find ``left.col = right.col`` among the AND-conjuncts of *expr*."""
    if expr is None:
        return None
    if isinstance(expr, SqlBinary) and expr.op is SqlOp.AND:
        return (_find_equi_join(expr.left, left_alias, right_alias)
                or _find_equi_join(expr.right, left_alias, right_alias))
    if isinstance(expr, SqlBinary) and expr.op is SqlOp.EQ and \
            isinstance(expr.left, ColRef) and \
            isinstance(expr.right, ColRef):
        left, right = expr.left, expr.right
        if left.table is None or right.table is None:
            return None
        if left.table.lower() == left_alias.lower() and \
                right.table.lower() == right_alias.lower():
            return left.column, right.column
        if left.table.lower() == right_alias.lower() and \
                right.table.lower() == left_alias.lower():
            return right.column, left.column
    return None


def _sort_key(value: Any) -> tuple[int, Any]:
    """NULLs sort first (ascending); columns are typed so non-null values
    within one column are mutually comparable."""
    if value is None:
        return (0, 0)
    return (1, value)


def _item_name(expr: SqlExpr, alias: str | None, index: int) -> str:
    if alias:
        return alias
    if isinstance(expr, ColRef):
        return expr.column
    if isinstance(expr, SqlAggregate):
        return expr.func.lower()
    return f"expr_{index}"
