"""The embedded event database.

The paper archives transformed events in MySQL and runs ad-hoc and
triggered queries against it.  This package replaces that DBMS with an
embedded relational engine (offline reproduction; see DESIGN.md):

* :mod:`repro.db.storage` — tables, typed columns, rows, hash indexes;
* :mod:`repro.db.sql_parser` — a SQL subset (CREATE TABLE/INDEX, INSERT,
  SELECT with joins/aggregates/GROUP BY/ORDER BY/LIMIT, UPDATE, DELETE);
* :mod:`repro.db.executor` — statement execution over the storage layer;
* :mod:`repro.db.eventdb` — the SASE event-database schema (products,
  locations, containment, event archive) and the track-and-trace API.
"""

from repro.db.database import Database, ResultSet
from repro.db.eventdb import EventDatabase
from repro.db.storage import Column, SqlType, Table

__all__ = ["Column", "Database", "EventDatabase", "ResultSet", "SqlType",
           "Table"]
