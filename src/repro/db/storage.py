"""Storage layer: typed columns, tables, rows, and hash indexes.

Rows are stored as lists keyed by a monotonically increasing rowid.  Hash
indexes map a column value to the set of rowids holding it and are
maintained on every mutation; the executor uses them for equality lookups.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterable, Iterator

from repro.errors import TableError


class SqlType(enum.Enum):
    INT = "INT"
    FLOAT = "FLOAT"
    TEXT = "TEXT"
    BOOL = "BOOL"

    @classmethod
    def parse(cls, word: str) -> "SqlType":
        normalized = word.upper()
        aliases = {
            "INT": cls.INT, "INTEGER": cls.INT, "BIGINT": cls.INT,
            "FLOAT": cls.FLOAT, "REAL": cls.FLOAT, "DOUBLE": cls.FLOAT,
            "TEXT": cls.TEXT, "STRING": cls.TEXT, "VARCHAR": cls.TEXT,
            "BOOL": cls.BOOL, "BOOLEAN": cls.BOOL,
        }
        if normalized not in aliases:
            raise TableError(f"unknown SQL type {word!r}")
        return aliases[normalized]

    def coerce(self, value: Any) -> Any:
        """Coerce *value* for storage; None (NULL) always passes."""
        if value is None:
            return None
        try:
            if self is SqlType.INT:
                if isinstance(value, bool):
                    raise TypeError
                if isinstance(value, float) and not value.is_integer():
                    raise TypeError
                return int(value)
            if self is SqlType.FLOAT:
                if isinstance(value, bool):
                    raise TypeError
                return float(value)
            if self is SqlType.TEXT:
                if not isinstance(value, str):
                    raise TypeError
                return value
            if isinstance(value, bool):
                return value
            raise TypeError
        except (TypeError, ValueError):
            raise TableError(
                f"value {value!r} is not valid for type "
                f"{self.value}") from None
        raise AssertionError("unreachable")


@dataclass(frozen=True)
class Column:
    name: str
    type: SqlType
    primary_key: bool = False


class HashIndex:
    """value -> set of rowids, for one column."""

    __slots__ = ("column", "_buckets")

    def __init__(self, column: str):
        self.column = column
        self._buckets: dict[Any, set[int]] = {}

    def add(self, value: Any, rowid: int) -> None:
        self._buckets.setdefault(value, set()).add(rowid)

    def remove(self, value: Any, rowid: int) -> None:
        bucket = self._buckets.get(value)
        if bucket is not None:
            bucket.discard(rowid)
            if not bucket:
                del self._buckets[value]

    def lookup(self, value: Any) -> set[int]:
        return self._buckets.get(value, set())

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())


class Table:
    """One table: schema, rows, and maintained indexes."""

    def __init__(self, name: str, columns: Iterable[Column]):
        self.name = name
        self.columns = list(columns)
        if not self.columns:
            raise TableError(f"table {name!r} needs at least one column")
        seen: set[str] = set()
        for column in self.columns:
            lowered = column.name.lower()
            if lowered in seen:
                raise TableError(
                    f"duplicate column {column.name!r} in table {name!r}")
            seen.add(lowered)
        self._position = {column.name.lower(): index
                          for index, column in enumerate(self.columns)}
        self._rows: dict[int, list[Any]] = {}
        self._next_rowid = 0
        self._indexes: dict[str, HashIndex] = {}
        primary = [column for column in self.columns if column.primary_key]
        if len(primary) > 1:
            raise TableError(
                f"table {name!r}: at most one PRIMARY KEY column")
        self._primary = primary[0].name.lower() if primary else None
        if self._primary is not None:
            self.create_index(self._primary)

    # -- schema ---------------------------------------------------------------

    def column_position(self, name: str) -> int:
        try:
            return self._position[name.lower()]
        except KeyError:
            raise TableError(
                f"table {self.name!r} has no column {name!r}; columns: "
                f"{', '.join(column.name for column in self.columns)}"
            ) from None

    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    def has_column(self, name: str) -> bool:
        return name.lower() in self._position

    # -- rows -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def rows(self) -> Iterator[tuple[int, list[Any]]]:
        return iter(self._rows.items())

    def row(self, rowid: int) -> list[Any]:
        try:
            return self._rows[rowid]
        except KeyError:
            raise TableError(
                f"table {self.name!r} has no row {rowid}") from None

    def insert(self, values: dict[str, Any] | list[Any]) -> int:
        if isinstance(values, dict):
            row: list[Any] = [None] * len(self.columns)
            for key, value in values.items():
                row[self.column_position(key)] = value
        else:
            if len(values) != len(self.columns):
                raise TableError(
                    f"table {self.name!r} expects {len(self.columns)} "
                    f"values, got {len(values)}")
            row = list(values)
        for index, column in enumerate(self.columns):
            row[index] = column.type.coerce(row[index])
        if self._primary is not None:
            position = self._position[self._primary]
            key = row[position]
            if key is None:
                raise TableError(
                    f"table {self.name!r}: PRIMARY KEY may not be NULL")
            if self._indexes[self._primary].lookup(key):
                raise TableError(
                    f"table {self.name!r}: duplicate PRIMARY KEY {key!r}")
        rowid = self._next_rowid
        self._next_rowid += 1
        self._rows[rowid] = row
        for column_name, index in self._indexes.items():
            index.add(row[self._position[column_name]], rowid)
        return rowid

    def update(self, rowid: int, changes: dict[str, Any]) -> None:
        row = self.row(rowid)
        for key, value in changes.items():
            position = self.column_position(key)
            coerced = self.columns[position].type.coerce(value)
            column_name = self.columns[position].name.lower()
            if column_name == self._primary and coerced != row[position]:
                if coerced is None:
                    raise TableError(
                        f"table {self.name!r}: PRIMARY KEY may not be NULL")
                if self._indexes[self._primary].lookup(coerced):
                    raise TableError(
                        f"table {self.name!r}: duplicate PRIMARY KEY "
                        f"{coerced!r}")
            index = self._indexes.get(column_name)
            if index is not None:
                index.remove(row[position], rowid)
                index.add(coerced, rowid)
            row[position] = coerced

    def delete(self, rowid: int) -> None:
        row = self.row(rowid)
        for column_name, index in self._indexes.items():
            index.remove(row[self._position[column_name]], rowid)
        del self._rows[rowid]

    # -- indexes -----------------------------------------------------------------

    def create_index(self, column: str) -> None:
        lowered = column.lower()
        position = self.column_position(column)
        if lowered in self._indexes:
            return
        index = HashIndex(lowered)
        for rowid, row in self._rows.items():
            index.add(row[position], rowid)
        self._indexes[lowered] = index

    def index_for(self, column: str) -> HashIndex | None:
        return self._indexes.get(column.lower())

    def lookup(self, column: str, value: Any) -> list[tuple[int, list[Any]]]:
        """Equality lookup, via the index when one exists."""
        index = self._indexes.get(column.lower())
        if index is not None:
            return [(rowid, self._rows[rowid])
                    for rowid in sorted(index.lookup(value))]
        position = self.column_position(column)
        return [(rowid, row) for rowid, row in self._rows.items()
                if row[position] == value]
