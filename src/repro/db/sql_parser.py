"""SQL subset: lexer, AST, and parser for the event database.

Supported statements (enough for everything the paper does with MySQL —
archival rule updates, RETURN-clause lookups, and ad-hoc track-and-trace
queries)::

    CREATE TABLE name (col TYPE [PRIMARY KEY], ...)
    CREATE INDEX ON name (col)
    DROP TABLE name
    INSERT INTO name [(cols)] VALUES (v, ...), (v, ...)
    SELECT items FROM t1 [alias] [, t2 [alias]] [WHERE expr]
        [GROUP BY cols] [ORDER BY expr [ASC|DESC], ...] [LIMIT n]
    UPDATE name SET col = expr, ... [WHERE expr]
    DELETE FROM name [WHERE expr]

Aggregates COUNT/SUM/AVG/MIN/MAX are allowed in SELECT items.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

from repro.db.storage import Column, SqlType
from repro.errors import SqlError

# --------------------------------------------------------------------------
# tokens
# --------------------------------------------------------------------------

_KEYWORDS = frozenset("""
SELECT FROM WHERE GROUP ORDER BY LIMIT ASC DESC INSERT INTO VALUES UPDATE
SET DELETE CREATE TABLE INDEX DROP PRIMARY KEY AND OR NOT NULL TRUE FALSE
IS AS ON DISTINCT BETWEEN IN LIKE
""".split())

_TWO_CHAR_OPS = {"!=", "<>", "<=", ">="}
_ONE_CHAR_OPS = set("=<>+-*/%(),.;")


@dataclass(frozen=True)
class _Token:
    kind: str       # KEYWORD, IDENT, NUMBER, STRING, OP, EOF
    text: str
    value: object = None


def _is_ascii_digit(character: str) -> bool:
    # str.isdigit() accepts Unicode digits int()/float() reject.
    return "0" <= character <= "9"


def _tokenize(sql: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    length = len(sql)
    while position < length:
        character = sql[position]
        if character.isspace():
            position += 1
            continue
        if sql.startswith("--", position):
            while position < length and sql[position] != "\n":
                position += 1
            continue
        if _is_ascii_digit(character) or (character == "." and
                                          position + 1 < length and
                                          _is_ascii_digit(
                                              sql[position + 1])):
            start = position
            seen_dot = False
            while position < length and (_is_ascii_digit(sql[position]) or
                                         (sql[position] == "."
                                          and not seen_dot)):
                if sql[position] == ".":
                    seen_dot = True
                position += 1
            text = sql[start:position]
            value = float(text) if seen_dot else int(text)
            tokens.append(_Token("NUMBER", text, value))
            continue
        if character.isalpha() or character == "_":
            start = position
            while position < length and (sql[position].isalnum()
                                         or sql[position] == "_"):
                position += 1
            text = sql[start:position]
            if text.upper() in _KEYWORDS:
                tokens.append(_Token("KEYWORD", text.upper()))
            else:
                tokens.append(_Token("IDENT", text))
            continue
        if character == "'":
            position += 1
            pieces: list[str] = []
            while True:
                if position >= length:
                    raise SqlError("unterminated string literal")
                if sql[position] == "'":
                    if position + 1 < length and sql[position + 1] == "'":
                        pieces.append("'")
                        position += 2
                        continue
                    position += 1
                    break
                pieces.append(sql[position])
                position += 1
            text = "".join(pieces)
            tokens.append(_Token("STRING", text, text))
            continue
        two = sql[position:position + 2]
        if two in _TWO_CHAR_OPS:
            tokens.append(_Token("OP", "!=" if two == "<>" else two))
            position += 2
            continue
        if character in _ONE_CHAR_OPS:
            tokens.append(_Token("OP", character))
            position += 1
            continue
        raise SqlError(f"unexpected character {character!r} in SQL")
    tokens.append(_Token("EOF", ""))
    return tokens


# --------------------------------------------------------------------------
# AST
# --------------------------------------------------------------------------

SqlExpr = Union["ColRef", "SqlLiteral", "SqlBinary", "SqlUnary",
                "SqlAggregate", "SqlIsNull", "SqlBetween", "SqlIn",
                "SqlLike"]


@dataclass(frozen=True)
class ColRef:
    table: str | None
    column: str


@dataclass(frozen=True)
class SqlLiteral:
    value: int | float | str | bool | None


class SqlOp(enum.Enum):
    AND = "AND"
    OR = "OR"
    EQ = "="
    NEQ = "!="
    LT = "<"
    LTE = "<="
    GT = ">"
    GTE = ">="
    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    MOD = "%"


@dataclass(frozen=True)
class SqlBinary:
    op: SqlOp
    left: SqlExpr
    right: SqlExpr


@dataclass(frozen=True)
class SqlUnary:
    op: str  # "NOT" or "-"
    operand: SqlExpr


@dataclass(frozen=True)
class SqlAggregate:
    func: str  # COUNT / SUM / AVG / MIN / MAX
    arg: SqlExpr | None  # None for COUNT(*)


@dataclass(frozen=True)
class SqlIsNull:
    operand: SqlExpr
    negated: bool


@dataclass(frozen=True)
class SqlBetween:
    operand: "SqlExpr"
    low: "SqlExpr"
    high: "SqlExpr"
    negated: bool


@dataclass(frozen=True)
class SqlIn:
    operand: "SqlExpr"
    choices: tuple["SqlExpr", ...]
    negated: bool


@dataclass(frozen=True)
class SqlLike:
    operand: "SqlExpr"
    pattern: str  # SQL pattern: % = any run, _ = any single character
    negated: bool


@dataclass(frozen=True)
class SelectItem:
    expr: SqlExpr
    alias: str | None


@dataclass(frozen=True)
class SelectStmt:
    items: tuple[SelectItem, ...]  # empty tuple means SELECT *
    tables: tuple[tuple[str, str], ...]  # (table name, alias)
    where: SqlExpr | None
    group_by: tuple[ColRef, ...]
    order_by: tuple[tuple[SqlExpr, bool], ...]  # (expr, descending)
    limit: int | None
    distinct: bool = False


@dataclass(frozen=True)
class InsertStmt:
    table: str
    columns: tuple[str, ...] | None
    rows: tuple[tuple[SqlExpr, ...], ...]


@dataclass(frozen=True)
class UpdateStmt:
    table: str
    assignments: tuple[tuple[str, SqlExpr], ...]
    where: SqlExpr | None


@dataclass(frozen=True)
class DeleteStmt:
    table: str
    where: SqlExpr | None


@dataclass(frozen=True)
class CreateTableStmt:
    name: str
    columns: tuple[Column, ...]


@dataclass(frozen=True)
class CreateIndexStmt:
    table: str
    column: str


@dataclass(frozen=True)
class DropTableStmt:
    name: str


Statement = Union[SelectStmt, InsertStmt, UpdateStmt, DeleteStmt,
                  CreateTableStmt, CreateIndexStmt, DropTableStmt]

_AGGREGATES = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})

_COMPARISON_OPS = {
    "=": SqlOp.EQ, "!=": SqlOp.NEQ, "<": SqlOp.LT, "<=": SqlOp.LTE,
    ">": SqlOp.GT, ">=": SqlOp.GTE,
}


def parse_sql(sql: str) -> Statement:
    """Parse one SQL statement."""
    return _SqlParser(_tokenize(sql)).parse()


class _SqlParser:
    def __init__(self, tokens: list[_Token]):
        self._tokens = tokens
        self._pos = 0

    # -- plumbing --------------------------------------------------------

    def _peek(self, offset: int = 0) -> _Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> _Token:
        token = self._tokens[self._pos]
        if token.kind != "EOF":
            self._pos += 1
        return token

    def _match_keyword(self, *words: str) -> bool:
        token = self._peek()
        if token.kind == "KEYWORD" and token.text in words:
            self._advance()
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        token = self._advance()
        if token.kind != "KEYWORD" or token.text != word:
            raise SqlError(f"expected {word}, found {token.text or 'end of statement'!r}")

    def _match_op(self, op: str) -> bool:
        token = self._peek()
        if token.kind == "OP" and token.text == op:
            self._advance()
            return True
        return False

    def _expect_op(self, op: str) -> None:
        token = self._advance()
        if token.kind != "OP" or token.text != op:
            raise SqlError(f"expected {op!r}, found "
                           f"{token.text or 'end of statement'!r}")

    def _expect_ident(self, context: str) -> str:
        token = self._advance()
        if token.kind != "IDENT":
            raise SqlError(f"expected an identifier {context}, found "
                           f"{token.text or 'end of statement'!r}")
        return token.text

    # -- statements ---------------------------------------------------------

    def parse(self) -> Statement:
        token = self._peek()
        if token.kind != "KEYWORD":
            raise SqlError(f"expected a statement, found {token.text!r}")
        statement: Statement
        if token.text == "SELECT":
            statement = self._parse_select()
        elif token.text == "INSERT":
            statement = self._parse_insert()
        elif token.text == "UPDATE":
            statement = self._parse_update()
        elif token.text == "DELETE":
            statement = self._parse_delete()
        elif token.text == "CREATE":
            statement = self._parse_create()
        elif token.text == "DROP":
            statement = self._parse_drop()
        else:
            raise SqlError(f"unsupported statement {token.text}")
        self._match_op(";")
        tail = self._peek()
        if tail.kind != "EOF":
            raise SqlError(f"unexpected trailing SQL at {tail.text!r}")
        return statement

    def _parse_select(self) -> SelectStmt:
        self._expect_keyword("SELECT")
        distinct = self._match_keyword("DISTINCT")
        items: list[SelectItem] = []
        if self._match_op("*"):
            pass  # empty items == SELECT *
        else:
            items.append(self._parse_select_item())
            while self._match_op(","):
                items.append(self._parse_select_item())
        self._expect_keyword("FROM")
        tables = [self._parse_table_ref()]
        while self._match_op(","):
            tables.append(self._parse_table_ref())
        where = self._parse_expr() if self._match_keyword("WHERE") else None
        group_by: list[ColRef] = []
        order_by: list[tuple[SqlExpr, bool]] = []
        limit: int | None = None
        if self._match_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._parse_colref())
            while self._match_op(","):
                group_by.append(self._parse_colref())
        if self._match_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._parse_order_item())
            while self._match_op(","):
                order_by.append(self._parse_order_item())
        if self._match_keyword("LIMIT"):
            token = self._advance()
            if token.kind != "NUMBER" or not isinstance(token.value, int):
                raise SqlError("LIMIT expects an integer")
            limit = token.value
        return SelectStmt(tuple(items), tuple(tables), where,
                          tuple(group_by), tuple(order_by), limit, distinct)

    def _parse_select_item(self) -> SelectItem:
        expr = self._parse_expr()
        alias = None
        if self._match_keyword("AS"):
            alias = self._expect_ident("after AS")
        elif self._peek().kind == "IDENT":
            alias = self._advance().text
        return SelectItem(expr, alias)

    def _parse_table_ref(self) -> tuple[str, str]:
        name = self._expect_ident("as a table name")
        alias = name
        if self._match_keyword("AS"):
            alias = self._expect_ident("after AS")
        elif self._peek().kind == "IDENT":
            alias = self._advance().text
        return name, alias

    def _parse_order_item(self) -> tuple[SqlExpr, bool]:
        expr = self._parse_expr()
        descending = False
        if self._match_keyword("DESC"):
            descending = True
        else:
            self._match_keyword("ASC")
        return expr, descending

    def _parse_colref(self) -> ColRef:
        first = self._expect_ident("as a column")
        if self._match_op("."):
            return ColRef(first, self._expect_ident("after '.'"))
        return ColRef(None, first)

    def _parse_insert(self) -> InsertStmt:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_ident("as the target table")
        columns: tuple[str, ...] | None = None
        if self._match_op("("):
            names = [self._expect_ident("as a column name")]
            while self._match_op(","):
                names.append(self._expect_ident("as a column name"))
            self._expect_op(")")
            columns = tuple(names)
        self._expect_keyword("VALUES")
        rows: list[tuple[SqlExpr, ...]] = []
        while True:
            self._expect_op("(")
            values = [self._parse_expr()]
            while self._match_op(","):
                values.append(self._parse_expr())
            self._expect_op(")")
            rows.append(tuple(values))
            if not self._match_op(","):
                break
        return InsertStmt(table, columns, tuple(rows))

    def _parse_update(self) -> UpdateStmt:
        self._expect_keyword("UPDATE")
        table = self._expect_ident("as the target table")
        self._expect_keyword("SET")
        assignments = [self._parse_assignment()]
        while self._match_op(","):
            assignments.append(self._parse_assignment())
        where = self._parse_expr() if self._match_keyword("WHERE") else None
        return UpdateStmt(table, tuple(assignments), where)

    def _parse_assignment(self) -> tuple[str, SqlExpr]:
        column = self._expect_ident("as the assigned column")
        self._expect_op("=")
        return column, self._parse_expr()

    def _parse_delete(self) -> DeleteStmt:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._expect_ident("as the target table")
        where = self._parse_expr() if self._match_keyword("WHERE") else None
        return DeleteStmt(table, where)

    def _parse_create(self) -> Statement:
        self._expect_keyword("CREATE")
        if self._match_keyword("INDEX"):
            self._expect_keyword("ON")
            table = self._expect_ident("as the indexed table")
            self._expect_op("(")
            column = self._expect_ident("as the indexed column")
            self._expect_op(")")
            return CreateIndexStmt(table, column)
        self._expect_keyword("TABLE")
        name = self._expect_ident("as the new table's name")
        self._expect_op("(")
        columns = [self._parse_column_def()]
        while self._match_op(","):
            columns.append(self._parse_column_def())
        self._expect_op(")")
        return CreateTableStmt(name, tuple(columns))

    def _parse_column_def(self) -> Column:
        name = self._expect_ident("as a column name")
        type_token = self._advance()
        if type_token.kind not in ("IDENT", "KEYWORD"):
            raise SqlError(f"expected a type for column {name!r}")
        sql_type = SqlType.parse(type_token.text)
        primary = False
        if self._match_keyword("PRIMARY"):
            self._expect_keyword("KEY")
            primary = True
        return Column(name, sql_type, primary_key=primary)

    def _parse_drop(self) -> DropTableStmt:
        self._expect_keyword("DROP")
        self._expect_keyword("TABLE")
        return DropTableStmt(self._expect_ident("as the dropped table"))

    # -- expressions ----------------------------------------------------------

    def _parse_expr(self) -> SqlExpr:
        return self._parse_or()

    def _parse_or(self) -> SqlExpr:
        left = self._parse_and()
        while self._match_keyword("OR"):
            left = SqlBinary(SqlOp.OR, left, self._parse_and())
        return left

    def _parse_and(self) -> SqlExpr:
        left = self._parse_not()
        while self._match_keyword("AND"):
            left = SqlBinary(SqlOp.AND, left, self._parse_not())
        return left

    def _parse_not(self) -> SqlExpr:
        if self._match_keyword("NOT"):
            return SqlUnary("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> SqlExpr:
        left = self._parse_additive()
        if self._match_keyword("IS"):
            negated = self._match_keyword("NOT")
            self._expect_keyword("NULL")
            return SqlIsNull(left, negated)
        negated = False
        if self._peek().kind == "KEYWORD" and self._peek().text == "NOT" \
                and self._peek(1).kind == "KEYWORD" \
                and self._peek(1).text in ("BETWEEN", "IN", "LIKE"):
            self._advance()
            negated = True
        if self._match_keyword("BETWEEN"):
            low = self._parse_additive()
            self._expect_keyword("AND")
            high = self._parse_additive()
            return SqlBetween(left, low, high, negated)
        if self._match_keyword("IN"):
            self._expect_op("(")
            choices = [self._parse_expr()]
            while self._match_op(","):
                choices.append(self._parse_expr())
            self._expect_op(")")
            return SqlIn(left, tuple(choices), negated)
        if self._match_keyword("LIKE"):
            token = self._advance()
            if token.kind != "STRING":
                raise SqlError("LIKE expects a string pattern")
            assert isinstance(token.value, str)
            return SqlLike(left, token.value, negated)
        if negated:
            raise SqlError("NOT here must be followed by BETWEEN, IN, "
                           "or LIKE")
        token = self._peek()
        if token.kind == "OP" and token.text in _COMPARISON_OPS:
            self._advance()
            right = self._parse_additive()
            return SqlBinary(_COMPARISON_OPS[token.text], left, right)
        return left

    def _parse_additive(self) -> SqlExpr:
        left = self._parse_multiplicative()
        while True:
            if self._match_op("+"):
                left = SqlBinary(SqlOp.ADD, left,
                                 self._parse_multiplicative())
            elif self._match_op("-"):
                left = SqlBinary(SqlOp.SUB, left,
                                 self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> SqlExpr:
        left = self._parse_unary()
        while True:
            if self._match_op("*"):
                left = SqlBinary(SqlOp.MUL, left, self._parse_unary())
            elif self._match_op("/"):
                left = SqlBinary(SqlOp.DIV, left, self._parse_unary())
            elif self._match_op("%"):
                left = SqlBinary(SqlOp.MOD, left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> SqlExpr:
        if self._match_op("-"):
            return SqlUnary("-", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> SqlExpr:
        token = self._peek()
        if token.kind == "NUMBER":
            self._advance()
            assert isinstance(token.value, (int, float))
            return SqlLiteral(token.value)
        if token.kind == "STRING":
            self._advance()
            assert isinstance(token.value, str)
            return SqlLiteral(token.value)
        if token.kind == "KEYWORD":
            if token.text == "NULL":
                self._advance()
                return SqlLiteral(None)
            if token.text == "TRUE":
                self._advance()
                return SqlLiteral(True)
            if token.text == "FALSE":
                self._advance()
                return SqlLiteral(False)
        if self._match_op("("):
            expr = self._parse_expr()
            self._expect_op(")")
            return expr
        if token.kind == "IDENT":
            name = self._advance().text
            if name.upper() in _AGGREGATES and self._match_op("("):
                if self._match_op("*"):
                    if name.upper() != "COUNT":
                        raise SqlError(f"'*' only valid in COUNT, "
                                       f"not {name}")
                    self._expect_op(")")
                    return SqlAggregate("COUNT", None)
                arg = self._parse_expr()
                self._expect_op(")")
                return SqlAggregate(name.upper(), arg)
            if self._match_op("."):
                return ColRef(name, self._expect_ident("after '.'"))
            return ColRef(None, name)
        raise SqlError(f"expected an expression, found "
                       f"{token.text or 'end of statement'!r}")
