"""The SASE event database: schema, archival rules, and track-and-trace.

Mirrors Section 3 of the paper: "a tag's location information is updated
when we observe this tag in a different location with a different
timestamp" (Location Update), "readings from unloading and loading zones
are aggregated into a containment relationship" (Containment Update), and
the track-and-trace queries of Section 4 (current location, movement
history).  Durations of stay are stored with ``time_in`` / ``time_out``
exactly as the paper describes for ``_updateLocation``.
"""

from __future__ import annotations

from typing import Any

from repro.db.database import Database
from repro.db.storage import Column, SqlType
from repro.errors import DatabaseError
from repro.events.event import Event


class EventDatabase:
    """The persistence component of the SASE system."""

    REQUIRED_TABLES = ("products", "areas", "locations", "containment",
                       "event_archive")

    def __init__(self, database: Database | None = None):
        self.db = database or Database()
        self._create_schema()
        self._archive_seq = 0

    # -- persistence ---------------------------------------------------------

    def save(self, path: str) -> None:
        """Snapshot the event database to a JSON file (atomically, via
        :meth:`Database.dump`'s temp-file-and-replace)."""
        self.db.dump(path)

    @classmethod
    def load(cls, path: str) -> "EventDatabase":
        """Restore an event database saved with :meth:`save`."""
        return cls._adopt(Database.load(path), source=path)

    def to_snapshot(self) -> dict[str, Any]:
        """The JSON-serializable snapshot :meth:`save` writes (the
        checkpoint substrate of the persistence subsystem)."""
        return self.db.to_snapshot()

    @classmethod
    def from_snapshot(cls, snapshot: Any) -> "EventDatabase":
        """Rebuild an event database from a :meth:`to_snapshot` dict."""
        return cls._adopt(Database.from_snapshot(snapshot),
                          source="snapshot")

    @classmethod
    def _adopt(cls, database: Database, source: str) -> "EventDatabase":
        for required in cls.REQUIRED_TABLES:
            if not database.has_table(required):
                raise DatabaseError(
                    f"{source}: snapshot is missing the {required!r} "
                    f"table; not an event database")
        instance = cls.__new__(cls)
        instance.db = database
        next_seq = database.execute(
            "SELECT MAX(seq) FROM event_archive").scalar()
        instance._archive_seq = 0 if next_seq is None else next_seq + 1
        return instance

    def _create_schema(self) -> None:
        self.db.create_table("products", [
            Column("tag_id", SqlType.INT, primary_key=True),
            Column("product_name", SqlType.TEXT),
            Column("category", SqlType.TEXT),
            Column("price", SqlType.FLOAT),
            Column("expiration_date", SqlType.TEXT),
            Column("saleable", SqlType.BOOL),
        ])
        self.db.create_table("areas", [
            Column("area_id", SqlType.INT, primary_key=True),
            Column("kind", SqlType.TEXT),
            Column("description", SqlType.TEXT),
        ])
        self.db.create_table("locations", [
            Column("tag_id", SqlType.INT),
            Column("area_id", SqlType.INT),
            Column("time_in", SqlType.FLOAT),
            Column("time_out", SqlType.FLOAT),
        ])
        self.db.create_table("containment", [
            Column("child_tag", SqlType.INT),
            Column("parent_tag", SqlType.INT),
            Column("time_in", SqlType.FLOAT),
            Column("time_out", SqlType.FLOAT),
        ])
        self.db.create_table("event_archive", [
            Column("seq", SqlType.INT, primary_key=True),
            Column("event_type", SqlType.TEXT),
            Column("tag_id", SqlType.INT),
            Column("area_id", SqlType.INT),
            Column("ts", SqlType.FLOAT),
        ])
        for table, column in (("locations", "tag_id"),
                              ("containment", "child_tag"),
                              ("containment", "parent_tag"),
                              ("event_archive", "tag_id")):
            self.db.table(table).create_index(column)

    # -- reference data -------------------------------------------------------

    def register_product(self, tag_id: int, product_name: str,
                         category: str = "general", price: float = 0.0,
                         expiration_date: str = "",
                         saleable: bool = True) -> None:
        self.db.insert("products", {
            "tag_id": tag_id, "product_name": product_name,
            "category": category, "price": float(price),
            "expiration_date": expiration_date, "saleable": saleable})

    def register_area(self, area_id: int, kind: str,
                      description: str) -> None:
        self.db.insert("areas", {"area_id": area_id, "kind": kind,
                                 "description": description})

    def product_info(self, tag_id: int) -> dict[str, Any] | None:
        rows = self.db.table("products").lookup("tag_id", tag_id)
        if not rows:
            return None
        table = self.db.table("products")
        return dict(zip(table.column_names(), rows[0][1]))

    def area_description(self, area_id: int) -> str | None:
        rows = self.db.table("areas").lookup("area_id", area_id)
        return rows[0][1][2] if rows else None

    # -- archival rules ----------------------------------------------------------

    def update_location(self, tag_id: int, area_id: int,
                        timestamp: float) -> bool:
        """The ``_updateLocation`` rule: close the current location's stay
        and open a new one.  Returns False when the tag is already at
        *area_id* (the rule's EVENT/WHERE clauses normally prevent this
        call, but the database stays consistent regardless)."""
        table = self.db.table("locations")
        current = self._current_location_row(tag_id)
        if current is not None:
            rowid, row = current
            if row[1] == area_id:
                return False
            if row[2] is not None and timestamp < row[2]:
                raise DatabaseError(
                    f"location update for tag {tag_id} at {timestamp} "
                    f"precedes its current stay starting at {row[2]}")
            table.update(rowid, {"time_out": float(timestamp)})
        table.insert({"tag_id": tag_id, "area_id": area_id,
                      "time_in": float(timestamp), "time_out": None})
        return True

    def update_containment(self, child_tag: int, parent_tag: int | None,
                           timestamp: float) -> bool:
        """The Containment Update rule: close the child's current
        containment and open a new one (``parent_tag=None`` just removes
        the child from its container)."""
        table = self.db.table("containment")
        current = self._current_containment_row(child_tag)
        if current is not None:
            rowid, row = current
            if row[1] == parent_tag:
                return False
            table.update(rowid, {"time_out": float(timestamp)})
        if parent_tag is None:
            return current is not None
        table.insert({"child_tag": child_tag, "parent_tag": parent_tag,
                      "time_in": float(timestamp), "time_out": None})
        return True

    def archive_event(self, event: Event) -> int:
        """Append one transformed event to the archive."""
        seq = self._archive_seq
        self._archive_seq += 1
        self.db.insert("event_archive", {
            "seq": seq,
            "event_type": event.type,
            "tag_id": event.get("TagId"),
            "area_id": event.get("AreaId"),
            "ts": float(event.timestamp)})
        return seq

    # -- track-and-trace queries ----------------------------------------------------

    def current_location(self, tag_id: int) -> dict[str, Any] | None:
        """Track-and-trace: where is this item now?"""
        current = self._current_location_row(tag_id)
        if current is None:
            return None
        _, row = current
        return {"tag_id": row[0], "area_id": row[1], "time_in": row[2],
                "time_out": row[3],
                "description": self.area_description(row[1])}

    def movement_history(self, tag_id: int) -> list[dict[str, Any]]:
        """Track-and-trace: every area the item stayed in, in order."""
        return self.db.query(
            f"SELECT l.area_id, l.time_in, l.time_out, a.description "
            f"FROM locations l, areas a "
            f"WHERE l.tag_id = {int(tag_id)} AND l.area_id = a.area_id "
            f"ORDER BY l.time_in")

    def current_containment(self, child_tag: int) -> int | None:
        current = self._current_containment_row(child_tag)
        return current[1][1] if current is not None else None

    def containment_history(self, child_tag: int) -> list[dict[str, Any]]:
        return self.db.query(
            f"SELECT parent_tag, time_in, time_out FROM containment "
            f"WHERE child_tag = {int(child_tag)} ORDER BY time_in")

    def current_contents(self, parent_tag: int) -> list[int]:
        """Children currently inside *parent_tag*."""
        table = self.db.table("containment")
        children = []
        for _, row in table.lookup("parent_tag", parent_tag):
            if row[3] is None:
                children.append(row[0])
        return sorted(children)

    def trace(self, tag_id: int) -> dict[str, Any]:
        """Full track-and-trace record: movement + containment history."""
        return {
            "tag_id": tag_id,
            "product": self.product_info(tag_id),
            "current_location": self.current_location(tag_id),
            "movement_history": self.movement_history(tag_id),
            "containment_history": self.containment_history(tag_id),
        }

    # -- internals ------------------------------------------------------------------

    def _current_location_row(self, tag_id: int) \
            -> tuple[int, list[Any]] | None:
        for rowid, row in self.db.table("locations").lookup(
                "tag_id", tag_id):
            if row[3] is None:  # open stay
                return rowid, row
        return None

    def _current_containment_row(self, child_tag: int) \
            -> tuple[int, list[Any]] | None:
        for rowid, row in self.db.table("containment").lookup(
                "child_tag", child_tag):
            if row[3] is None:
                return rowid, row
        return None
