"""The Database facade: parse-and-execute SQL plus a programmatic API,
with JSON snapshot persistence (the paper's "persistence storage
component" durability, sans a real DBMS)."""

from __future__ import annotations

import json
import os
from typing import Any

from repro.db.executor import Executor, ResultSet
from repro.db.sql_parser import parse_sql
from repro.db.storage import Column, SqlType, Table
from repro.errors import DatabaseError, TableError

__all__ = ["Database", "ResultSet"]

_SNAPSHOT_VERSION = 1


class Database:
    """An embedded relational database.

    ``execute`` runs a SQL statement; the programmatic methods
    (``create_table`` / ``insert`` / ``table``) skip parsing for hot paths
    like event archiving.
    """

    def __init__(self) -> None:
        self._executor = Executor()

    # -- SQL interface -------------------------------------------------------

    def execute(self, sql: str) -> ResultSet:
        """Parse and execute one SQL statement."""
        return self._executor.execute(parse_sql(sql))

    def query(self, sql: str) -> list[dict[str, Any]]:
        """Execute a SELECT and return rows as dictionaries."""
        return self.execute(sql).as_dicts()

    def explain(self, sql: str) -> list[str]:
        """Describe the access paths *sql* would use, without running it."""
        return self._executor.explain(parse_sql(sql))

    # -- programmatic interface -------------------------------------------------

    def create_table(self, name: str,
                     columns: list[Column | tuple[str, SqlType]]) -> Table:
        specs = [column if isinstance(column, Column)
                 else Column(column[0], column[1]) for column in columns]
        lowered = name.lower()
        if lowered in self._executor.tables:
            raise TableError(f"table {name!r} already exists")
        table = Table(name, specs)
        self._executor.tables[lowered] = table
        return table

    def table(self, name: str) -> Table:
        return self._executor.table(name)

    def has_table(self, name: str) -> bool:
        return name.lower() in self._executor.tables

    def table_names(self) -> list[str]:
        return sorted(table.name for table in
                      self._executor.tables.values())

    def insert(self, table: str, values: dict[str, Any]) -> int:
        """Insert one row, returning its rowid (no SQL parsing)."""
        return self.table(table).insert(values)

    # -- persistence ------------------------------------------------------------

    def to_snapshot(self) -> dict[str, Any]:
        """The JSON-serializable snapshot :meth:`dump` writes: every
        table's schema, secondary indexes, and rows in rowid order."""
        snapshot: dict[str, Any] = {"version": _SNAPSHOT_VERSION,
                                    "tables": {}}
        for table in self._executor.tables.values():
            snapshot["tables"][table.name] = {
                "columns": [{"name": column.name,
                             "type": column.type.value,
                             "primary_key": column.primary_key}
                            for column in table.columns],
                "indexes": [column.name for column in table.columns
                            if table.index_for(column.name) is not None
                            and not column.primary_key],
                "rows": [row for _, row in sorted(table.rows())],
            }
        return snapshot

    @classmethod
    def from_snapshot(cls, snapshot: Any) -> "Database":
        """Rebuild a database from a :meth:`to_snapshot` dict."""
        if not isinstance(snapshot, dict) or \
                snapshot.get("version") != _SNAPSHOT_VERSION:
            raise DatabaseError(
                f"not a version-{_SNAPSHOT_VERSION} database snapshot")
        database = cls()
        for name, spec in snapshot["tables"].items():
            columns = [Column(column["name"],
                              SqlType(column["type"]),
                              primary_key=column["primary_key"])
                       for column in spec["columns"]]
            table = database.create_table(name, columns)
            for row in spec["rows"]:
                table.insert(list(row))
            for indexed in spec["indexes"]:
                table.create_index(indexed)
        return database

    def dump(self, path: str) -> None:
        """Snapshot every table (schema, indexes, rows) to a JSON file.

        The snapshot lands in a sibling temp file first and is moved into
        place with :func:`os.replace`, so a crash mid-dump leaves any
        previous snapshot at *path* intact.
        """
        snapshot = self.to_snapshot()
        temp_path = f"{path}.tmp"
        try:
            with open(temp_path, "w", encoding="utf-8") as handle:
                json.dump(snapshot, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.remove(temp_path)
            except OSError:
                pass
            raise

    @classmethod
    def load(cls, path: str) -> "Database":
        """Restore a database from a :meth:`dump` snapshot."""
        with open(path, encoding="utf-8") as handle:
            snapshot = json.load(handle)
        try:
            return cls.from_snapshot(snapshot)
        except DatabaseError as exc:
            raise DatabaseError(f"{path}: {exc}") from None
