"""Supply-chain histories for the track-and-trace demonstration.

"We pre-populate our Event Database with RFID data that simulates typical
warehouse and retail store workloads, such as loading/unloading items,
stocking shelves, and changing containments" (Section 4).

:class:`WarehouseHistory` generates such a history with ground truth: boxes
of items arrive at the loading dock, pass through the unloading dock and
backroom, get unpacked, get stocked onto shelves, and occasionally change
boxes along the way.  The history can be applied to an
:class:`~repro.db.eventdb.EventDatabase` directly (``populate``) or emitted
as reading events to run through the archival rules (``events``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator

from repro.db.eventdb import EventDatabase
from repro.events.event import Event
from repro.ons.service import ObjectNameService, ProductRecord
from repro.rfid.layout import StoreLayout, default_retail_layout
from repro.schemas import (
    BACKROOM_READING,
    LOADING_READING,
    SHELF_READING,
    UNLOADING_READING,
)

LOADING_AREA = 10
UNLOADING_AREA = 11
BACKROOM_AREA = 12


@dataclass(frozen=True)
class WarehouseConfig:
    n_boxes: int = 4
    items_per_box: int = 5
    n_box_changes: int = 3      # items moved between boxes mid-flow
    first_item_tag: int = 5000
    first_box_tag: int = 9000
    seed: int = 11
    start_time: float = 0.0
    step: float = 30.0          # seconds between supply-chain stages


@dataclass(frozen=True)
class _Op:
    """One history entry: a location or containment change."""

    time: float
    kind: str                   # "location" | "containment" | "uncontain"
    tag_id: int
    target: int | None          # area id or parent tag


@dataclass
class WarehouseTruth:
    """Expected final state + per-item history, computed at generation."""

    final_location: dict[int, int] = field(default_factory=dict)
    final_parent: dict[int, int | None] = field(default_factory=dict)
    location_history: dict[int, list[tuple[int, float]]] = field(
        default_factory=dict)
    containment_history: dict[int, list[tuple[int | None, float]]] = field(
        default_factory=dict)


class WarehouseHistory:
    """A generated supply-chain history with ground truth."""

    def __init__(self, config: WarehouseConfig, ops: list[_Op],
                 truth: WarehouseTruth, ons: ObjectNameService,
                 layout: StoreLayout, item_tags: list[int],
                 box_tags: list[int]):
        self.config = config
        self.ops = ops
        self.truth = truth
        self.ons = ons
        self.layout = layout
        self.item_tags = item_tags
        self.box_tags = box_tags

    @classmethod
    def generate(cls, config: WarehouseConfig | None = None) \
            -> "WarehouseHistory":
        config = config or WarehouseConfig()
        rng = random.Random(config.seed)
        layout = default_retail_layout()
        layout.add_area(LOADING_AREA, _kind("loading"), "loading dock")
        layout.add_area(UNLOADING_AREA, _kind("unloading"), "unloading dock")
        layout.add_area(BACKROOM_AREA, _kind("backroom"),
                        "backroom storage")
        layout.add_reader("W1", LOADING_AREA)
        layout.add_reader("W2", UNLOADING_AREA)
        layout.add_reader("W3", BACKROOM_AREA)

        ons = ObjectNameService()
        truth = WarehouseTruth()
        ops: list[_Op] = []
        item_tags: list[int] = []
        box_tags: list[int] = []
        clock = config.start_time
        shelves = layout.shelf_ids()

        def record_location(tag_id: int, area: int, when: float) -> None:
            truth.final_location[tag_id] = area
            truth.location_history.setdefault(tag_id, []).append(
                (area, when))
            ops.append(_Op(when, "location", tag_id, area))

        def record_containment(tag_id: int, parent: int | None,
                               when: float) -> None:
            truth.final_parent[tag_id] = parent
            if parent is not None:
                # the truth history lists containment *stays*, matching the
                # database's containment rows (closing a stay is not a row)
                truth.containment_history.setdefault(tag_id, []).append(
                    (parent, when))
            ops.append(_Op(when, "containment" if parent is not None
                           else "uncontain", tag_id, parent))

        next_item = config.first_item_tag
        for box_index in range(config.n_boxes):
            box_tag = config.first_box_tag + box_index
            box_tags.append(box_tag)
            ons.register(ProductRecord(
                tag_id=box_tag, product_name=f"box #{box_tag}",
                category="container", saleable=False))
            items = list(range(next_item,
                               next_item + config.items_per_box))
            next_item += config.items_per_box
            for tag_id in items:
                item_tags.append(tag_id)
                home = shelves[tag_id % len(shelves)]
                ons.register(ProductRecord(
                    tag_id=tag_id, product_name=f"item #{tag_id}",
                    category="general", price=float(1 + tag_id % 20),
                    home_area_id=home))

            clock += config.step
            record_location(box_tag, LOADING_AREA, clock)
            for tag_id in items:
                # items are read strictly after the box at the dock so the
                # containment rule's SEQ(container, item) can fire
                record_location(tag_id, LOADING_AREA, clock + 1.0)
                record_containment(tag_id, box_tag, clock + 1.0)

            clock += config.step
            for tag_id in (box_tag, *items):
                record_location(tag_id, UNLOADING_AREA, clock)

            clock += config.step
            for tag_id in (box_tag, *items):
                record_location(tag_id, BACKROOM_AREA, clock)

            clock += config.step
            for tag_id in items:  # unpack and stock
                record_containment(tag_id, None, clock)
                record = ons.lookup(tag_id)
                assert record is not None
                record_location(tag_id, record.home_area_id,
                                clock + rng.uniform(0.0, 5.0))

        # mid-flow box changes: move an item into a different box while in
        # the backroom ("changing containments, e.g. moving items from one
        # box to another")
        for _ in range(config.n_box_changes):
            tag_id = rng.choice(item_tags)
            new_box = rng.choice(box_tags)
            clock += config.step / 2
            record_containment(tag_id, new_box, clock)
            record_containment(tag_id, None, clock + config.step / 4)

        ops.sort(key=lambda op: op.time)
        return cls(config, ops, truth, ons, layout, item_tags, box_tags)

    # -- application paths --------------------------------------------------

    def populate(self, event_db: EventDatabase) -> None:
        """Apply the history straight to the event database (the paper
        pre-populates the database 'with data collected in advance')."""
        for record in self.ons:
            event_db.register_product(
                record.tag_id, record.product_name,
                category=record.category, price=record.price,
                saleable=record.saleable)
        for area in self.layout.areas.values():
            event_db.register_area(area.area_id, area.kind.value,
                                   area.description)
        for op in self.ops:
            if op.kind == "location":
                assert op.target is not None
                event_db.update_location(op.tag_id, op.target, op.time)
            elif op.kind == "containment":
                event_db.update_containment(op.tag_id, op.target, op.time)
            else:
                event_db.update_containment(op.tag_id, None, op.time)

    def events(self) -> Iterator[Event]:
        """The same history as reading events (for the rules-driven path).
        Containment changes are implied by co-located loading readings, so
        only location ops become events."""
        type_for_area = {
            LOADING_AREA: LOADING_READING,
            UNLOADING_AREA: UNLOADING_READING,
            BACKROOM_AREA: BACKROOM_READING,
        }
        for op in self.ops:
            if op.kind != "location":
                continue
            assert op.target is not None
            event_type = type_for_area.get(op.target, SHELF_READING)
            record = self.ons.lookup(op.tag_id)
            assert record is not None
            attributes = {"TagId": op.tag_id, "AreaId": op.target,
                          "ReaderId": "W?"}
            attributes.update(record.as_attributes())
            yield Event(event_type, op.time, attributes)


def _kind(name: str):
    from repro.rfid.layout import AreaKind
    return AreaKind(name)
