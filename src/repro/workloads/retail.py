"""The retail-store demonstration scenario (Section 4, Figure 2).

Builds the four-area store, a product catalogue split across the two
shelves, and a movement script of scripted behaviours:

* **shoppers** pick an item from a shelf, pay at the check-out counter,
  and leave through the exit;
* **shoplifters** pick an item and leave *without* passing the counter —
  exactly what query Q1 detects;
* **misplacements** move an item onto the wrong shelf — what the
  misplaced-inventory query detects.

The scenario carries ground truth so benchmarks can score detection
precision/recall and latency.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.ons.service import ObjectNameService, ProductRecord
from repro.rfid.layout import StoreLayout, default_retail_layout
from repro.rfid.noise import NoiseModel
from repro.rfid.simulator import MovementScript, RfidSimulator

# -- the demonstration queries (Section 2.1.1 and Section 4) -----------------

SHOPLIFTING_QUERY = """
EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z)
WHERE x.TagId = y.TagId AND x.TagId = z.TagId
WITHIN 12 hours
RETURN x.TagId, x.ProductName, z.AreaId, _retrieveLocation(z.AreaId)
"""

MISPLACED_INVENTORY_QUERY = """
EVENT SHELF_READING x
WHERE x.AreaId != x.HomeAreaId AND x.Saleable = TRUE
RETURN x.TagId, x.ProductName, x.AreaId, _movementHistory(x.TagId)
"""

# Q2 of the paper: a location change between shelves triggers a database
# update reflecting the change.
SHELF_CHANGE_RULE = """
EVENT SEQ(SHELF_READING x, SHELF_READING y)
WHERE x.TagId = y.TagId AND x.AreaId != y.AreaId
WITHIN 1 hour
RETURN _updateLocation(y.TagId, y.AreaId, y.Timestamp)
"""


def LOCATION_UPDATE_RULE(event_type: str) -> str:
    """A per-reading-type location-tracking rule.  ``_updateLocation`` is
    a no-op when the tag is already at the observed area, so registering
    one rule per reading type keeps the ``locations`` table current."""
    return f"""
EVENT {event_type} x
RETURN _updateLocation(x.TagId, x.AreaId, x.Timestamp)
"""


CONTAINMENT_RULE = """
EVENT SEQ(LOADING_READING c, LOADING_READING i)
WHERE c.Category = 'container' AND i.Category != 'container'
WITHIN 5 seconds
RETURN _updateContainment(i.TagId, c.TagId, i.Timestamp)
"""

# An item read on a shelf has been unpacked: close its containment stay.
UNPACK_RULE = """
EVENT SHELF_READING i
RETURN _closeContainment(i.TagId, i.Timestamp)
"""


# -- ground truth -------------------------------------------------------------

@dataclass(frozen=True)
class ShopliftingIncident:
    tag_id: int
    pick_time: float
    exit_time: float


@dataclass(frozen=True)
class MisplacementIncident:
    tag_id: int
    time: float
    from_area: int
    to_area: int


@dataclass(frozen=True)
class Purchase:
    tag_id: int
    pick_time: float
    counter_time: float
    exit_time: float


@dataclass
class GroundTruth:
    shoplifted: list[ShopliftingIncident] = field(default_factory=list)
    misplaced: list[MisplacementIncident] = field(default_factory=list)
    purchased: list[Purchase] = field(default_factory=list)

    def shoplifted_tags(self) -> set[int]:
        return {incident.tag_id for incident in self.shoplifted}

    def misplaced_tags(self) -> set[int]:
        return {incident.tag_id for incident in self.misplaced}

    def purchased_tags(self) -> set[int]:
        return {purchase.tag_id for purchase in self.purchased}


# -- scenario generation ---------------------------------------------------------

@dataclass(frozen=True)
class RetailConfig:
    """Scenario knobs.  Times are in seconds of simulated store time."""

    n_products: int = 40
    n_shoppers: int = 8
    n_shoplifters: int = 2
    n_misplacements: int = 2
    first_tag_id: int = 1000
    seed: int = 7
    start_time: float = 0.0
    shopper_spacing: float = 30.0    # mean gap between customer arrivals
    browse_time: float = 45.0        # pick -> counter / exit
    counter_dwell: float = 4.0       # time spent at the counter
    walk_time: float = 15.0          # counter -> exit
    exit_dwell: float = 3.0          # time in the exit read range

    def __post_init__(self) -> None:
        total_actors = self.n_shoppers + self.n_shoplifters
        if self.n_products < total_actors + self.n_misplacements:
            raise SimulationError(
                "not enough products for the requested behaviours")


_CATALOGUE = (
    ("detergent", "household", 6.99), ("toothpaste", "household", 2.99),
    ("sponge pack", "household", 3.49), ("paper towels", "household", 5.29),
    ("headphones", "electronics", 34.99), ("usb drive", "electronics", 12.99),
    ("batteries", "electronics", 8.49), ("hdmi cable", "electronics", 9.99),
)

_SHELF_FOR_CATEGORY = {"household": 1, "electronics": 2}


class RetailScenario:
    """A generated scenario: layout + catalogue + script + ground truth."""

    def __init__(self, config: RetailConfig, layout: StoreLayout,
                 ons: ObjectNameService, script: MovementScript,
                 truth: GroundTruth, end_time: float):
        self.config = config
        self.layout = layout
        self.ons = ons
        self.script = script
        self.truth = truth
        self.end_time = end_time

    @classmethod
    def generate(cls, config: RetailConfig | None = None,
                 redundant_exit_reader: bool = False) -> "RetailScenario":
        config = config or RetailConfig()
        rng = random.Random(config.seed)
        layout = default_retail_layout(redundant_exit_reader)
        ons = ObjectNameService()
        truth = GroundTruth()
        script = MovementScript()

        tags = list(range(config.first_tag_id,
                          config.first_tag_id + config.n_products))
        for tag_id in tags:
            name, category, price = _CATALOGUE[tag_id % len(_CATALOGUE)]
            home = _SHELF_FOR_CATEGORY[category]
            ons.register(ProductRecord(
                tag_id=tag_id, product_name=f"{name} #{tag_id}",
                category=category, price=price,
                expiration_date="2027-01-01", saleable=True,
                home_area_id=home))
            script.move(config.start_time, tag_id, home)

        available = list(tags)
        rng.shuffle(available)
        clock = config.start_time + 5.0

        for _ in range(config.n_shoppers):
            tag_id = available.pop()
            clock += rng.expovariate(1.0 / config.shopper_spacing)
            pick = clock + rng.uniform(1.0, 10.0)
            counter = pick + rng.uniform(0.5, 1.0) * config.browse_time
            exit_time = counter + config.counter_dwell \
                + rng.uniform(0.5, 1.0) * config.walk_time
            script.remove(pick, tag_id)           # in the shopper's basket
            script.move(counter, tag_id, 3)
            script.remove(counter + config.counter_dwell, tag_id)
            script.move(exit_time, tag_id, 4)
            script.remove(exit_time + config.exit_dwell, tag_id)
            truth.purchased.append(Purchase(tag_id, pick, counter,
                                            exit_time))

        for _ in range(config.n_shoplifters):
            tag_id = available.pop()
            clock += rng.expovariate(1.0 / config.shopper_spacing)
            pick = clock + rng.uniform(1.0, 10.0)
            exit_time = pick + rng.uniform(0.5, 1.0) * config.browse_time
            script.remove(pick, tag_id)           # hidden in a bag
            script.move(exit_time, tag_id, 4)     # straight to the exit
            script.remove(exit_time + config.exit_dwell, tag_id)
            truth.shoplifted.append(ShopliftingIncident(tag_id, pick,
                                                        exit_time))

        shelves = layout.shelf_ids()
        for _ in range(config.n_misplacements):
            tag_id = available.pop()
            record = ons.lookup(tag_id)
            assert record is not None
            wrong = [shelf for shelf in shelves
                     if shelf != record.home_area_id]
            to_area = rng.choice(wrong)
            when = clock + rng.uniform(5.0, 60.0)
            script.move(when, tag_id, to_area)
            truth.misplaced.append(MisplacementIncident(
                tag_id, when, record.home_area_id, to_area))

        end_time = script.end_time + 10.0
        return cls(config, layout, ons, script, truth, end_time)

    def simulator(self, noise: NoiseModel | None = None,
                  scan_interval: float = 1.0,
                  seed: int | None = None) -> RfidSimulator:
        return RfidSimulator(self.layout, noise or NoiseModel.perfect(),
                             scan_interval=scan_interval,
                             seed=self.config.seed if seed is None else seed)

    def ticks(self, noise: NoiseModel | None = None,
              scan_interval: float = 1.0):
        """The raw-reading tick stream for this scenario."""
        simulator = self.simulator(noise, scan_interval)
        return simulator.run_script(self.script, until=self.end_time)
