"""Synthetic event streams for the engine benchmarks.

The demo paper delegates its performance story to the engine techniques of
its reference [8]; those were evaluated on synthetic streams parameterised
by window size, number of partition-attribute values, predicate
selectivity, sequence length, and negation — this generator produces such
streams deterministically from a seed.

Every event type shares one schema: ``id`` (the partition attribute, drawn
from a configurable domain), ``v`` (a small value attribute for selectivity
predicates), and ``price`` (a float for aggregate queries).
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.events.event import Event
from repro.events.model import AttributeType, SchemaRegistry


def type_names(n_types: int) -> list[str]:
    """A, B, C, ... type names."""
    if not 1 <= n_types <= 26:
        raise SimulationError("n_types must be between 1 and 26")
    return list(string.ascii_uppercase[:n_types])


def synthetic_registry(n_types: int = 5) -> SchemaRegistry:
    registry = SchemaRegistry()
    for name in type_names(n_types):
        registry.declare(name, id=AttributeType.INT, v=AttributeType.INT,
                         price=AttributeType.FLOAT)
    return registry


@dataclass(frozen=True)
class SyntheticConfig:
    n_events: int = 10_000
    n_types: int = 5
    id_domain: int = 100       # distinct partition-attribute values
    v_domain: int = 10         # distinct values of the selectivity attr
    mean_gap: float = 1.0      # mean seconds between events
    seed: int = 1
    type_weights: tuple[float, ...] = ()  # default: uniform

    def __post_init__(self) -> None:
        if self.n_events <= 0 or self.id_domain <= 0 or self.v_domain <= 0:
            raise SimulationError("synthetic config values must be positive")
        if self.type_weights and len(self.type_weights) != self.n_types:
            raise SimulationError(
                "type_weights must match n_types when given")


@dataclass
class SyntheticStream:
    """A generated stream plus the registry it conforms to."""

    config: SyntheticConfig
    registry: SchemaRegistry
    events: list[Event] = field(default_factory=list)

    @classmethod
    def generate(cls, config: SyntheticConfig | None = None) \
            -> "SyntheticStream":
        config = config or SyntheticConfig()
        rng = random.Random(config.seed)
        names = type_names(config.n_types)
        weights = list(config.type_weights) or [1.0] * config.n_types
        registry = synthetic_registry(config.n_types)
        events: list[Event] = []
        timestamp = 0.0
        for _ in range(config.n_events):
            timestamp += rng.expovariate(1.0 / config.mean_gap)
            name = rng.choices(names, weights)[0]
            events.append(Event(name, round(timestamp, 6), {
                "id": rng.randrange(config.id_domain),
                "v": rng.randrange(config.v_domain),
                "price": round(rng.uniform(1.0, 100.0), 2),
            }))
        return cls(config, registry, events)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def duration(self) -> float:
        if not self.events:
            return 0.0
        return self.events[-1].timestamp - self.events[0].timestamp


def seq_query(length: int, *, window: float, partitioned: bool = True,
              v_filter: int | None = None,
              negation_at: int | None = None) -> str:
    """Build a SEQ query over types A, B, C, ... for benchmarks.

    ``length`` counts positive components.  ``negation_at`` inserts a
    negated component (of the next unused type) at that position among the
    positives (0 = leading, length = trailing).  ``v_filter`` adds a
    per-component selectivity predicate ``var.v < v_filter`` on the first
    component.
    """
    names = type_names(length + (1 if negation_at is not None else 0))
    variables = [f"e{index}" for index in range(length)]
    components = [f"{name} {variable}"
                  for name, variable in zip(names, variables)]
    if negation_at is not None:
        neg_type = names[length]
        components.insert(negation_at, f"!({neg_type} n)")
    predicates: list[str] = []
    if partitioned:
        predicates.extend(f"{variables[0]}.id = {variable}.id"
                          for variable in variables[1:])
        if negation_at is not None:
            predicates.append(f"{variables[0]}.id = n.id")
    if v_filter is not None:
        predicates.append(f"{variables[0]}.v < {v_filter}")
    where = f"\nWHERE {' AND '.join(predicates)}" if predicates else ""
    returns = ", ".join(f"{variable}.id" for variable in variables[:1])
    return (f"EVENT SEQ({', '.join(components)}){where}\n"
            f"WITHIN {window:g} seconds\nRETURN {returns}")
