"""Medication-compliance workload — the paper's healthcare motivation.

"Real-time monitoring of patients taking medications can help enforce
medical compliance and alert care providers when anomalies occur"
(Section 1).  This generator scripts a ward: medication doses are
dispensed on a schedule and patients either take them in time
(compliant), skip them (a *missed dose*), or take them twice (a *double
dose*) — with ground truth for scoring the monitoring queries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.events.event import Event
from repro.events.model import AttributeType, SchemaRegistry

DISPENSED = "DISPENSED"
INTAKE = "INTAKE"

MISSED_DOSE_QUERY = """
EVENT SEQ(DISPENSED d, !(INTAKE i))
WHERE d.PatientId = i.PatientId AND d.Drug = i.Drug
WITHIN 30 minutes
RETURN MissedDose(d.PatientId, d.Drug)
"""

DOUBLE_DOSE_QUERY = """
EVENT SEQ(INTAKE a, INTAKE b)
WHERE a.PatientId = b.PatientId AND a.Drug = b.Drug
WITHIN 2 hours
RETURN DoubleDose(a.PatientId, a.Drug)
"""

_DRUGS = ("aspirin", "insulin", "heparin", "statin")


def hospital_registry() -> SchemaRegistry:
    registry = SchemaRegistry()
    for name in (DISPENSED, INTAKE):
        registry.declare(name, PatientId=AttributeType.INT,
                         Drug=AttributeType.STRING,
                         Dose=AttributeType.FLOAT)
    return registry


@dataclass(frozen=True)
class HospitalConfig:
    n_patients: int = 10
    doses_per_patient: int = 4
    dose_interval: float = 4 * 3600.0   # between scheduled doses
    compliance_window: float = 30 * 60.0
    miss_probability: float = 0.15
    double_probability: float = 0.1
    seed: int = 23

    def __post_init__(self) -> None:
        if self.n_patients < 1 or self.doses_per_patient < 1:
            raise SimulationError("need at least one patient and dose")
        if self.miss_probability + self.double_probability > 1.0:
            raise SimulationError(
                "miss and double probabilities must sum to <= 1")
        if self.dose_interval <= 2 * 3600.0 + self.compliance_window:
            raise SimulationError(
                "dose interval must exceed the double-dose window plus "
                "the compliance window, or scheduled doses would alias")


@dataclass(frozen=True)
class MissedDose:
    patient_id: int
    drug: str
    dispensed_at: float


@dataclass(frozen=True)
class DoubleDose:
    patient_id: int
    drug: str
    first_at: float
    second_at: float


@dataclass
class WardTruth:
    missed: list[MissedDose] = field(default_factory=list)
    double: list[DoubleDose] = field(default_factory=list)

    def missed_keys(self) -> set[tuple[int, str, float]]:
        return {(incident.patient_id, incident.drug,
                 incident.dispensed_at) for incident in self.missed}

    def double_keys(self) -> set[tuple[int, str]]:
        return {(incident.patient_id, incident.drug)
                for incident in self.double}


class HospitalScenario:
    """A generated ward day: events in time order plus ground truth."""

    def __init__(self, config: HospitalConfig, events: list[Event],
                 truth: WardTruth):
        self.config = config
        self.events = events
        self.truth = truth
        self.registry = hospital_registry()

    @classmethod
    def generate(cls, config: HospitalConfig | None = None) \
            -> "HospitalScenario":
        config = config or HospitalConfig()
        rng = random.Random(config.seed)
        events: list[Event] = []
        truth = WardTruth()

        for patient in range(1, config.n_patients + 1):
            drug = _DRUGS[patient % len(_DRUGS)]
            dose = float(5 * (1 + patient % 4))
            offset = rng.uniform(0.0, 600.0)
            for round_index in range(config.doses_per_patient):
                dispensed_at = offset + round_index * config.dose_interval
                events.append(Event(DISPENSED, dispensed_at, {
                    "PatientId": patient, "Drug": drug, "Dose": dose}))
                roll = rng.random()
                if roll < config.miss_probability:
                    truth.missed.append(MissedDose(patient, drug,
                                                   dispensed_at))
                    continue
                intake_at = dispensed_at + rng.uniform(
                    60.0, config.compliance_window - 60.0)
                events.append(Event(INTAKE, intake_at, {
                    "PatientId": patient, "Drug": drug, "Dose": dose}))
                if roll < config.miss_probability \
                        + config.double_probability:
                    second_at = intake_at + rng.uniform(300.0, 3600.0)
                    events.append(Event(INTAKE, second_at, {
                        "PatientId": patient, "Drug": drug,
                        "Dose": dose}))
                    truth.double.append(DoubleDose(patient, drug,
                                                   intake_at, second_at))

        events.sort(key=lambda event: event.timestamp)
        return cls(config, events, truth)
