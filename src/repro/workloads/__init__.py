"""Workload generators for the demonstration and the benchmarks.

* :mod:`repro.workloads.retail` — the Figure 2 retail-store scenario with
  scripted shoppers, shoplifters, and misplacements, plus ground truth;
* :mod:`repro.workloads.warehouse` — supply-chain histories (loading,
  unloading, stocking, containment changes) for the track-and-trace
  pre-population;
* :mod:`repro.workloads.synthetic` — parameterised synthetic event streams
  for the engine benchmarks.
"""

from repro.workloads.retail import (
    CONTAINMENT_RULE,
    UNPACK_RULE,
    LOCATION_UPDATE_RULE,
    MISPLACED_INVENTORY_QUERY,
    SHELF_CHANGE_RULE,
    SHOPLIFTING_QUERY,
    RetailConfig,
    RetailScenario,
)
from repro.workloads.hospital import (
    DOUBLE_DOSE_QUERY,
    MISSED_DOSE_QUERY,
    HospitalConfig,
    HospitalScenario,
)
from repro.workloads.synthetic import SyntheticConfig, SyntheticStream
from repro.workloads.warehouse import WarehouseConfig, WarehouseHistory

__all__ = [
    "CONTAINMENT_RULE",
    "DOUBLE_DOSE_QUERY",
    "HospitalConfig",
    "HospitalScenario",
    "LOCATION_UPDATE_RULE",
    "MISSED_DOSE_QUERY",
    "MISPLACED_INVENTORY_QUERY",
    "SHELF_CHANGE_RULE",
    "SHOPLIFTING_QUERY",
    "UNPACK_RULE",
    "RetailConfig",
    "RetailScenario",
    "SyntheticConfig",
    "SyntheticStream",
    "WarehouseConfig",
    "WarehouseHistory",
]
