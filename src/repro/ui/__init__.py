"""Console UI mirroring Figure 3's five windows."""

from repro.ui.console import Panel, SaseConsole, render_panel

__all__ = ["Panel", "SaseConsole", "render_panel"]
