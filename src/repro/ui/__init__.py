"""Console UI mirroring Figure 3's five windows."""

from repro.ui.console import Panel, SaseConsole, format_trace_lines, \
    render_panel

__all__ = ["Panel", "SaseConsole", "format_trace_lines", "render_panel"]
