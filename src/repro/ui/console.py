"""Text rendering of the SASE UI.

Figure 3 of the paper shows five windows: *Present Queries* and *Message
Results* on the left; *Cleaning and Association Layer Output*, *Database
Report*, and *Stream Processor Output* on the right.  ``SaseConsole``
renders the same five panels from a live :class:`~repro.system.sase
.SaseSystem`'s taps, "to demonstrate SASE's internal data flow and display
the intermediate results used to compute final query output".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.trace import DataflowTracer, TICK_CONTEXT
from repro.system.sase import SaseSystem


@dataclass
class Panel:
    title: str
    lines: list[str]


def format_trace_lines(tracer: DataflowTracer,
                       query: str | None = None,
                       limit: int | None = None,
                       hits_only: bool = False) -> list[str]:
    """The Figure-3 intermediate-stream view of recorded traces: one line
    per fed event, showing the operator stages it passed.

    With *query*, only traces that touched that query are shown (with the
    stages restricted to it); *limit* keeps the most recent traces;
    *hits_only* drops traces that never got past the scan (no construct,
    RETURN, cascade, or database write).
    """
    _HIT_OPS = {"construct", "return", "cascade", "db_write"}
    lines: list[str] = []
    grouped = tracer.query_flow(query) if query is not None \
        else tracer.traces()
    for trace_id, spans in grouped.items():
        if trace_id == TICK_CONTEXT:
            continue  # cleaning-tick context, not an event's journey
        if hits_only and not any(span.op in _HIT_OPS for span in spans):
            continue
        head = f"#{trace_id}"
        stages: list[str] = []
        returns = 0
        for span in spans:
            mark = f"[s{span.shard}]" if span.shard is not None else ""
            if span.op == "event":
                head = (f"#{trace_id} {span.detail.get('event_type', '?')}"
                        f" t={span.ts:g}")
            elif span.op == "dispatch":
                stages.append(f"dispatch({span.detail.get('actions', 0)})"
                              f"{mark}")
            elif span.op == "scan":
                results = span.detail.get("results", 0)
                stages.append(f"scan {span.duration * 1e6:.0f}us"
                              f"{mark}" + ("" if results else " ∅"))
            elif span.op == "construct":
                stages.append(
                    f"construct x{span.detail.get('matches', 1)}{mark}")
            elif span.op == "return":
                returns += 1
                if returns <= 3:  # a burst of matches reads as one line
                    attrs = span.detail.get("attributes", {})
                    summary = ", ".join(f"{key}={value}" for key, value
                                        in list(attrs.items())[:3])
                    stages.append(f"RETURN {summary}{mark}")
            elif span.op == "cascade":
                stages.append(f"INTO {span.stream}{mark}")
            elif span.op == "advance":
                stages.append(
                    f"advance +{span.detail.get('released', 0)}{mark}")
            elif span.op == "db_write":
                stages.append(f"DB{mark}")
        if returns > 3:
            stages.append(f"… +{returns - 3} more RETURN")
        lines.append(f"{head} | " + " > ".join(stages)
                     if stages else f"{head} | (no stages)")
    if limit is not None and len(lines) > limit:
        lines = lines[-limit:]
    return lines


def _clip(text: str, width: int) -> str:
    return text if len(text) <= width else text[:width - 1] + "…"


def render_panel(panel: Panel, width: int = 78,
                 max_lines: int = 8) -> str:
    """One boxed panel, most recent lines last."""
    inner = width - 4
    top = f"┌─ {_clip(panel.title, inner - 1)} "
    top += "─" * max(0, width - len(top) - 1) + "┐"
    body_lines = panel.lines[-max_lines:] if panel.lines else ["(empty)"]
    rows = [f"│ {_clip(line, inner):<{inner}} │" for line in body_lines]
    bottom = "└" + "─" * (width - 2) + "┘"
    return "\n".join([top, *rows, bottom])


class SaseConsole:
    """Builds the five Figure 3 panels from a system's taps."""

    def __init__(self, system: SaseSystem, width: int = 78,
                 max_lines: int = 8):
        self._system = system
        self._width = width
        self._max_lines = max_lines

    # -- panels ---------------------------------------------------------------

    def present_queries(self) -> Panel:
        lines = []
        for registered in self._system.processor.queries():
            lines.append(f"{registered.name} [{registered.kind.value}] "
                         f"results={registered.results_produced}")
            first = registered.compiled.text.strip().splitlines()
            if first:
                lines.append(f"  {first[0].strip()}")
        return Panel("Present Queries", lines)

    def message_results(self) -> Panel:
        return Panel("Message Results", list(self._system.taps.messages))

    def cleaning_output(self) -> Panel:
        lines = [
            f"{event.type} t={event.timestamp:g} "
            f"tag={event.get('TagId')} area={event.get('AreaId')}"
            for event in self._system.taps.cleaning_output]
        return Panel("Cleaning and Association Layer Output", lines)

    def database_report(self) -> Panel:
        return Panel("Database Report",
                     list(self._system.taps.database_reports))

    def stream_processor_output(self) -> Panel:
        lines = []
        for name, result in self._system.taps.stream_results:
            attrs = ", ".join(f"{key}={value}" for key, value
                              in result.attributes.items())
            lines.append(f"[{name}] {attrs}")
        return Panel("Stream Processor Output", lines)

    def query_metrics(self) -> Panel:
        """An operational panel beyond Figure 3: per-query accounting."""
        return Panel("Query Metrics",
                     self._system.processor.metrics.report_lines())

    def persistence_status(self) -> Panel:
        """A durability panel beyond Figure 3: WAL, checkpoint, and
        recovery state (only rendered when persistence is on)."""
        manager = getattr(self._system, "persistence", None)
        if manager is None:
            return Panel("Persistence", ["(persistence disabled)"])
        gauges = manager.gauges()
        if not gauges.get("opened"):
            return Panel("Persistence", ["(recovery has not run)"])
        last = gauges["last_checkpoint_lsn"]
        lines = [
            f"wal: {gauges['wal_records']} record(s) in "
            f"{gauges['wal_segments']} segment(s), "
            f"{gauges['wal_bytes']} bytes, "
            f"{gauges['wal_fsyncs']} fsync(s)",
            f"checkpoints: {gauges['checkpoints_written']} written"
            + (f", last covers lsn {last}" if last is not None else ""),
            f"out log: {gauges['out_records']} durable match(es)",
            f"recovery: {gauges['replayed_events']} event(s) replayed, "
            f"{gauges['suppressed_matches']} match(es) suppressed",
        ]
        return Panel("Persistence", lines)

    def dataflow_trace(self, query: str | None = None) -> Panel:
        """The tracer's intermediate-stream view (empty when tracing is
        disabled)."""
        tracer = self._system.processor.tracer
        title = "Dataflow Trace" + (f" ({query})" if query else "")
        if tracer is None:
            return Panel(title, ["(tracing disabled)"])
        return Panel(title, format_trace_lines(tracer, query))

    # -- full screen -------------------------------------------------------------

    def render(self, include_metrics: bool = False,
               include_trace: bool = False) -> str:
        """All five Figure 3 panels, left column first; pass
        ``include_metrics=True`` for the extra operational panel and
        ``include_trace=True`` for the dataflow-trace panel."""
        panels = [
            self.present_queries(),
            self.message_results(),
            self.cleaning_output(),
            self.database_report(),
            self.stream_processor_output(),
        ]
        if getattr(self._system, "persistence", None) is not None:
            panels.append(self.persistence_status())
        if include_metrics:
            panels.append(self.query_metrics())
        if include_trace:
            panels.append(self.dataflow_trace())
        return "\n".join(render_panel(panel, self._width, self._max_lines)
                         for panel in panels)
