"""Text rendering of the SASE UI.

Figure 3 of the paper shows five windows: *Present Queries* and *Message
Results* on the left; *Cleaning and Association Layer Output*, *Database
Report*, and *Stream Processor Output* on the right.  ``SaseConsole``
renders the same five panels from a live :class:`~repro.system.sase
.SaseSystem`'s taps, "to demonstrate SASE's internal data flow and display
the intermediate results used to compute final query output".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.system.sase import SaseSystem


@dataclass
class Panel:
    title: str
    lines: list[str]


def _clip(text: str, width: int) -> str:
    return text if len(text) <= width else text[:width - 1] + "…"


def render_panel(panel: Panel, width: int = 78,
                 max_lines: int = 8) -> str:
    """One boxed panel, most recent lines last."""
    inner = width - 4
    top = f"┌─ {_clip(panel.title, inner - 1)} "
    top += "─" * max(0, width - len(top) - 1) + "┐"
    body_lines = panel.lines[-max_lines:] if panel.lines else ["(empty)"]
    rows = [f"│ {_clip(line, inner):<{inner}} │" for line in body_lines]
    bottom = "└" + "─" * (width - 2) + "┘"
    return "\n".join([top, *rows, bottom])


class SaseConsole:
    """Builds the five Figure 3 panels from a system's taps."""

    def __init__(self, system: SaseSystem, width: int = 78,
                 max_lines: int = 8):
        self._system = system
        self._width = width
        self._max_lines = max_lines

    # -- panels ---------------------------------------------------------------

    def present_queries(self) -> Panel:
        lines = []
        for registered in self._system.processor.queries():
            lines.append(f"{registered.name} [{registered.kind.value}] "
                         f"results={registered.results_produced}")
            first = registered.compiled.text.strip().splitlines()
            if first:
                lines.append(f"  {first[0].strip()}")
        return Panel("Present Queries", lines)

    def message_results(self) -> Panel:
        return Panel("Message Results", list(self._system.taps.messages))

    def cleaning_output(self) -> Panel:
        lines = [
            f"{event.type} t={event.timestamp:g} "
            f"tag={event.get('TagId')} area={event.get('AreaId')}"
            for event in self._system.taps.cleaning_output]
        return Panel("Cleaning and Association Layer Output", lines)

    def database_report(self) -> Panel:
        return Panel("Database Report",
                     list(self._system.taps.database_reports))

    def stream_processor_output(self) -> Panel:
        lines = []
        for name, result in self._system.taps.stream_results:
            attrs = ", ".join(f"{key}={value}" for key, value
                              in result.attributes.items())
            lines.append(f"[{name}] {attrs}")
        return Panel("Stream Processor Output", lines)

    def query_metrics(self) -> Panel:
        """An operational panel beyond Figure 3: per-query accounting."""
        return Panel("Query Metrics",
                     self._system.processor.metrics.report_lines())

    # -- full screen -------------------------------------------------------------

    def render(self, include_metrics: bool = False) -> str:
        """All five Figure 3 panels, left column first; pass
        ``include_metrics=True`` for the extra operational panel."""
        panels = [
            self.present_queries(),
            self.message_results(),
            self.cleaning_output(),
            self.database_report(),
            self.stream_processor_output(),
        ]
        if include_metrics:
            panels.append(self.query_metrics())
        return "\n".join(render_panel(panel, self._width, self._max_lines)
                         for panel in panels)
