"""Configuration for the durable persistence subsystem.

A :class:`PersistenceConfig` handed to :class:`~repro.system.sase
.SaseSystem` turns on write-ahead logging of the cleaned event stream,
periodic atomic checkpoints, and exactly-once crash recovery (see
``docs/persistence.md``).  The default everywhere is *off*: a system
built without one has zero durability overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PersistenceError

_MODES = ("always", "never", "every_n")


@dataclass(frozen=True)
class FsyncPolicy:
    """When appended WAL/out-log records reach stable storage.

    * ``always``  — flush and ``fsync`` after every record: survives
      power loss, slowest.
    * ``never``   — flush to the OS page cache after every record but
      never ``fsync``: survives a process SIGKILL (the kernel holds the
      data), not a machine crash.
    * ``every_n`` — buffer records in user space and flush + ``fsync``
      once every *interval* appends: amortizes the syscalls; a crash can
      lose up to *interval* trailing records, which recovery reconciles
      by re-reading the deterministic source (see docs).
    """

    mode: str
    interval: int = 64

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise PersistenceError(
                f"unknown fsync mode {self.mode!r} "
                f"(use one of {', '.join(_MODES)})")
        if self.mode == "every_n" and self.interval < 1:
            raise PersistenceError(
                f"every_n fsync interval must be >= 1, "
                f"got {self.interval}")

    @classmethod
    def parse(cls, spec: str) -> "FsyncPolicy":
        """Parse ``always`` / ``never`` / ``every_n`` / ``every_n:N``."""
        text = spec.strip().lower()
        if text.startswith("every_n"):
            _, _, tail = text.partition(":")
            if not tail:
                return cls("every_n")
            try:
                return cls("every_n", int(tail))
            except ValueError:
                raise PersistenceError(
                    f"bad fsync interval in {spec!r}; "
                    f"expected every_n:<count>") from None
        return cls(text)


@dataclass(frozen=True)
class PersistenceConfig:
    """Durability settings for one system.

    ``checkpoint_every`` is the number of *live* (non-replayed) events
    between checkpoints; 0 keeps only the final end-of-stream
    checkpoint.  ``group_items`` is the WAL's group-commit size — the
    unit of encode/write amortization and the upper bound on the
    buffered suffix a crash can drop (recovery reconciles that loss by
    re-reading the deterministic source).  ``linger_ms`` is how long
    the ``every_n`` background writer waits for more events before
    flushing a partial group — the durability latency of an idle
    stream.  ``crash_after`` is a fault-injection hook for the
    differential crash tests: the process SIGKILLs itself (taking its
    worker processes with it) immediately after the Nth WAL append.
    """

    data_dir: str
    fsync: FsyncPolicy = field(
        default_factory=lambda: FsyncPolicy("every_n", 64))
    checkpoint_every: int = 256
    keep_checkpoints: int = 2
    segment_max_bytes: int = 4 * 1024 * 1024
    group_items: int = 64
    linger_ms: float = 2.0
    crash_after: int | None = None

    def __post_init__(self) -> None:
        if self.checkpoint_every < 0:
            raise PersistenceError("checkpoint_every must be >= 0")
        if self.keep_checkpoints < 1:
            raise PersistenceError("keep_checkpoints must be >= 1")
        if self.segment_max_bytes < 1:
            raise PersistenceError("segment_max_bytes must be >= 1")
        if self.group_items < 1:
            raise PersistenceError("group_items must be >= 1")
        if self.linger_ms < 0:
            raise PersistenceError("linger_ms must be >= 0")
