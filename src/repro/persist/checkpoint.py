"""Atomic checkpoint snapshots.

A checkpoint is one JSON document — schema version, the WAL position it
covers (``wal_lsn``), the emitted-match high-water mark (``emitted``),
the replay horizon (``replay_lsn``, the oldest LSN recovery must re-feed
to rebuild in-window engine state), the event database snapshot, the
stream time, and a metrics snapshot for inspection.  It is written to a
temp file, fsynced, and moved into place with :func:`os.replace`, so a
crash mid-write can never corrupt an existing checkpoint; the loader
walks checkpoints newest-first and skips any that fail validation.
"""

from __future__ import annotations

import json
import os
import re
from typing import Any

from repro.resilience.retry import retry_call

CHECKPOINT_VERSION = 1
_CHECKPOINT_RE = re.compile(r"^checkpoint-(\d{8,})\.ckpt$")
_REQUIRED_KEYS = ("version", "wal_lsn", "emitted", "replay_lsn", "db")


def checkpoint_name(wal_lsn: int) -> str:
    return f"checkpoint-{wal_lsn:08d}.ckpt"


def validate(snapshot: Any) -> bool:
    return (isinstance(snapshot, dict)
            and snapshot.get("version") == CHECKPOINT_VERSION
            and all(key in snapshot for key in _REQUIRED_KEYS))


class CheckpointStore:
    """Write/read/garbage-collect the checkpoints of one data dir."""

    def __init__(self, directory: str, injector=None):
        self.directory = directory
        # With a FaultInjector armed for ``db.dump``, checkpoint writes
        # go through retry_call so a transient (or injected) OSError
        # yields a retried — still atomic — dump rather than a crash.
        self._injector = injector
        os.makedirs(directory, exist_ok=True)

    def _paths(self) -> list[tuple[int, str]]:
        found = []
        for entry in os.listdir(self.directory):
            match = _CHECKPOINT_RE.match(entry)
            if match is not None:
                found.append((int(match.group(1)),
                              os.path.join(self.directory, entry)))
        found.sort()
        return found

    def write(self, snapshot: dict) -> str:
        """Atomically persist *snapshot*; returns its path."""
        path = os.path.join(self.directory,
                            checkpoint_name(snapshot["wal_lsn"]))
        temp_path = f"{path}.tmp"
        try:
            if self._injector is None:
                self._dump(snapshot, temp_path, path)
            else:
                retry_call(lambda: self._dump(snapshot, temp_path, path),
                           retry_on=(OSError,), base_delay=0.001,
                           max_delay=0.02)
        except BaseException:
            try:
                os.remove(temp_path)
            except OSError:
                pass
            raise
        self._sync_directory()
        return path

    def _dump(self, snapshot: dict, temp_path: str, path: str) -> None:
        # Injection happens before any byte is written: a retried dump
        # rewrites the temp file from scratch and the os.replace stays
        # atomic, so partial state can never become visible.
        if self._injector is not None:
            self._injector.maybe_raise("db.dump")
        with open(temp_path, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, separators=(",", ":"))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)

    def _sync_directory(self) -> None:
        # Make the rename itself durable (best effort; some filesystems
        # refuse to fsync a directory fd).
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def latest(self) -> dict | None:
        """The newest checkpoint that loads and validates, or None."""
        for _, path in reversed(self._paths()):
            try:
                with open(path, encoding="utf-8") as handle:
                    snapshot = json.load(handle)
            except (OSError, ValueError):
                continue
            if validate(snapshot):
                return snapshot
        return None

    def horizons(self) -> list[tuple[int, int]]:
        """``(wal_lsn, replay_lsn)`` of every valid checkpoint on disk,
        oldest first — the WAL may only be GC'd below the minimum
        surviving replay horizon."""
        result = []
        for _, path in self._paths():
            try:
                with open(path, encoding="utf-8") as handle:
                    snapshot = json.load(handle)
            except (OSError, ValueError):
                continue
            if validate(snapshot):
                result.append((snapshot["wal_lsn"],
                               snapshot["replay_lsn"]))
        return result

    def gc(self, keep: int) -> int:
        """Drop all but the newest *keep* checkpoints; returns the
        number removed."""
        paths = self._paths()
        removed = 0
        for _, path in paths[:max(0, len(paths) - keep)]:
            try:
                os.remove(path)
                removed += 1
            except OSError:
                pass
        return removed
