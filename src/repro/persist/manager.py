"""The persistence manager: WAL + checkpoints + exactly-once recovery.

Durability model
----------------

The manager write-ahead-logs every *cleaned* event before the processor
sees it and appends every *delivered* match to a second framed log
(``matches.out``).  Because the whole pipeline downstream of cleaning is
deterministic — including the sharded runtime, whose merge emits results
in one canonical total order regardless of backend or timing — the out
log's record index is a global match ordinal.  Exactly-once restart is
then ordinal suppression: recovery replays WAL events through *fresh*
query engines and drops the first ``N`` regenerated matches, where ``N``
is the number of intact records already in the out log.

Engine state (scan stacks, possibly code-generated closures) is never
serialized.  A checkpoint instead records the WAL position ``L`` it
covers, the match ordinal at ``L``, an atomic event-database snapshot,
and a *replay horizon*: the oldest LSN still inside the largest stateful
query window.  Recovery feeds ``[horizon, L)`` with all output
suppressed and database writes going to a scratch database (the real
database state at ``L`` comes from the snapshot), swaps the snapshot in
at ``L``, and replays the tail with ordinal suppression.  Engine state
is continuous across the swap, so matches spanning the checkpoint
boundary re-form exactly.

Before each checkpoint the manager drains the sharded router (a barrier
that forces every in-flight batch to completion), which makes "matches
delivered so far" equal "matches for events below ``L``" even on the
asynchronous thread/process backends.

After recovery the event source is re-read from the beginning (the
scenario generators are seeded and cleaning is deterministic);
``should_skip`` swallows the first ``next_lsn`` cleaned events so the
live stream continues precisely where the WAL ends.
"""

from __future__ import annotations

import operator
import os
import signal
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.db.eventdb import EventDatabase
from repro.errors import PersistenceError
from repro.events.event import CompositeEvent, Event
from repro.obs.export import collector_snapshot
from repro.persist.checkpoint import CHECKPOINT_VERSION, CheckpointStore
from repro.persist.config import PersistenceConfig
from repro.persist.records import RecordWriter, encode_match, \
    event_from_item, scan_records, truncate_file
from repro.persist.wal import WriteAheadLog

OUT_LOG = "matches.out"


@dataclass
class RecoveryReport:
    """What one :meth:`PersistenceManager.recover` call did."""

    checkpoint_lsn: int | None
    replayed_events: int
    scratch_events: int
    durable_matches: int
    recovered_matches: list[tuple[str, CompositeEvent]] = \
        field(default_factory=list)
    suppressed_matches: list[tuple[str, CompositeEvent]] = \
        field(default_factory=list)
    elapsed_seconds: float = 0.0


class PersistenceManager:
    """Owns one data directory's WAL, out log, and checkpoints.

    *host* is duck-typed (``SaseSystem`` implements it; the benchmarks
    use a bare stand-in): it must expose ``processor``, an ``event_db``
    attribute, ``adopt_event_db(db)``, and ``scratch_event_db()``; it
    may expose ``on_replayed_event(event)`` to observe replays.
    """

    def __init__(self, config: PersistenceConfig, host: Any,
                 injector=None):
        self.config = config
        self._host = host
        # Optional FaultInjector for the ``wal.write``/``wal.fsync``/
        # ``db.dump`` chaos sites; threaded into the WAL and the
        # checkpoint store, which retry transient OSErrors when armed.
        self._injector = injector
        self._processor = host.processor
        self._wal: WriteAheadLog | None = None
        self._out: RecordWriter | None = None
        self._store: CheckpointStore | None = None
        self._opened = False
        self._finalized = False
        self._live = False   # opened and not finalized: one flag for
        #                      the hot path's guard
        self._crash_at = config.crash_after
        self._cadence = config.checkpoint_every or float("inf")
        # Exactly-once bookkeeping.
        self._ordinal = 0          # matches seen in canonical order
        self._durable = 0          # intact records in the out log
        self._suppress_all = False
        self._collect: tuple[list, list] | None = None
        self._skip_remaining = 0
        # Replay-horizon bookkeeping.
        self._frontier: deque[tuple[int, float]] = deque()
        self._max_ts = float("-inf")
        self._max_window: float | None = 0.0
        self._stateful = False
        # Counters surfaced through gauges().
        self._events_since_ckpt = 0
        self.out_records = 0
        self.replayed_events = 0
        self.suppressed_matches = 0
        self.redelivered_matches = 0
        self.skipped_events = 0
        self.checkpoints_written = 0
        self.last_checkpoint_lsn: int | None = None
        self.last_checkpoint_seconds = 0.0

    # -- recovery -------------------------------------------------------------

    def recover(self) -> RecoveryReport:
        """Open the data directory, restore the latest valid checkpoint,
        and replay the WAL with output suppression.  Must run exactly
        once, after query registration and before the first live event.
        """
        if self._opened:
            raise PersistenceError("recover() may only run once")
        started = time.perf_counter()
        directory = self.config.data_dir
        self._store = CheckpointStore(directory,
                                      injector=self._injector)
        self._wal = WriteAheadLog(
            directory, self.config.fsync, self.config.segment_max_bytes,
            group_items=self.config.group_items,
            linger_seconds=self.config.linger_ms / 1000.0,
            injector=self._injector)
        out_path = os.path.join(directory, OUT_LOG)
        durable_payloads, valid_end, size = scan_records(out_path)
        if valid_end < size:
            truncate_file(out_path, valid_end)
        self._durable = len(durable_payloads)
        self.out_records = self._durable
        self._out = RecordWriter(out_path, self.config.fsync)
        self._processor.set_delivery_filter(self._on_delivery)
        self._opened = True
        self._live = True
        self._analyze_queries()
        # Online query lifecycle: a register/deregister changes the
        # largest stateful window, and with it the WAL replay horizon —
        # without re-analysis a withdrawn long-window query would pin
        # WAL segments (and replay work) forever.
        self._processor.add_lifecycle_listener(self._on_lifecycle)

        report = RecoveryReport(checkpoint_lsn=None, replayed_events=0,
                                scratch_events=0,
                                durable_matches=self._durable)
        self._collect = (report.recovered_matches,
                         report.suppressed_matches)
        checkpoint = self._store.latest()
        tail_start = 0
        if checkpoint is not None:
            report.checkpoint_lsn = checkpoint["wal_lsn"]
            tail_start = checkpoint["wal_lsn"]
            report.scratch_events = self._replay_scratch(checkpoint)
            self._host.adopt_event_db(
                EventDatabase.from_snapshot(checkpoint["db"]))
            self._ordinal = checkpoint["emitted"]
            if self._durable < self._ordinal:
                # The out log lost a suffix the checkpoint had covered
                # (it is synced before every checkpoint, so this means
                # external tampering); deliver rather than suppress.
                self._durable = self._ordinal
            stream_time = checkpoint.get("stream_time")
            if stream_time is not None:
                self._max_ts = stream_time
        for lsn, item in self._wal.replay(tail_start):
            event = event_from_item(item)
            if not lsn & 7:
                self._track(lsn, event.timestamp)
            self._feed_replayed(event)
            report.replayed_events += 1
        if self._max_window is not None and not self._frontier:
            # No sampled LSN yet (fresh directory or short tail): pin
            # the horizon at the WAL end, which is exact right now and
            # only ever conservative afterwards.
            self._frontier.append((self._wal.next_lsn, self._max_ts))
        self._collect = None
        self.replayed_events = \
            report.scratch_events + report.replayed_events
        self._skip_remaining = self._wal.next_lsn
        self._events_since_ckpt = 0
        self._install_hot_path()
        report.elapsed_seconds = time.perf_counter() - started
        tracer = self._processor.tracer
        if tracer is not None:
            tracer.record(
                "replay", ts=0.0 if self._max_ts == float("-inf")
                else self._max_ts,
                duration=report.elapsed_seconds,
                detail={"events": self.replayed_events,
                        "checkpoint_lsn": report.checkpoint_lsn,
                        "suppressed": len(report.suppressed_matches)},
                trace_id=-1)
        return report

    def _replay_scratch(self, checkpoint: dict) -> int:
        """Warm the engines over ``[replay_lsn, wal_lsn)`` against a
        scratch database, with every match suppressed."""
        replay_from = checkpoint["replay_lsn"]
        boundary = checkpoint["wal_lsn"]
        if replay_from >= boundary:
            return 0
        self._host.adopt_event_db(self._host.scratch_event_db())
        self._suppress_all = True
        count = 0
        try:
            for lsn, item in self._wal.replay(replay_from):
                if lsn >= boundary:
                    break
                event = event_from_item(item)
                if not lsn & 7:
                    self._track(lsn, event.timestamp)
                self._feed_replayed(event)
                count += 1
        finally:
            self._suppress_all = False
        return count

    def _feed_replayed(self, event: Event) -> None:
        observe = getattr(self._host, "on_replayed_event", None)
        if observe is not None:
            observe(event)
        self._processor.feed(event)

    def _analyze_queries(self) -> None:
        """Derive the replay horizon window from the registered queries:
        the largest WITHIN of any *stateful* query (more than one
        positive component, negation, or Kleene closure).  ``None``
        means unbounded — every WAL record stays replayable.  Cascades
        (INTO/FROM) chain windows, so their bound is the sum."""
        windows: list[float | None] = []
        cascaded = False
        for registered in self._processor.queries():
            analyzed = registered.compiled.analyzed
            if registered.output_stream is not None:
                cascaded = True
            positives = sum(1 for component in analyzed.components
                            if not component.negated)
            if positives > 1 or analyzed.has_negation or \
                    analyzed.has_kleene:
                windows.append(analyzed.window)
        self._stateful = bool(windows)
        if not windows:
            self._max_window = 0.0
        elif any(window is None for window in windows):
            self._max_window = None
        elif cascaded:
            self._max_window = sum(windows)
        else:
            self._max_window = max(windows)

    def _on_lifecycle(self, action: str, registered: Any) -> None:
        """Re-derive the replay horizon from the live query set.  A
        shrinking window advances the horizon on the next sampled track;
        a vanished frontier (window now 0/bounded where it was unbounded)
        re-pins at the current WAL end."""
        previous = self._max_window
        self._analyze_queries()
        if self._max_window == previous:
            return
        if self._max_window is not None:
            if previous is None and not self._frontier:
                self._frontier.append((self._wal.next_lsn, self._max_ts))
            # Prune immediately under the new (smaller or now-bounded)
            # window so the next checkpoint's replay_lsn reflects it.
            cutoff = self._max_ts - self._max_window
            frontier = self._frontier
            while len(frontier) > 1 and frontier[1][1] < cutoff:
                frontier.popleft()

    # -- the live write path --------------------------------------------------

    def should_skip(self, event: Event) -> bool:
        """True while the re-read source is still inside the replayed
        prefix (those events are already in the WAL and already fed)."""
        if self._skip_remaining > 0:
            self._skip_remaining -= 1
            self.skipped_events += 1
            return True
        return False

    def _install_hot_path(self) -> None:
        """Fuse the WAL append into ``processor.feed`` (see
        ``set_persistence_hooks``).  Installed only once recovery has
        finished, so replayed events are never re-logged; removed on
        close so nothing appends to a closed log.

        The normal hook is the WAL's event-mode append — for
        ``every_n`` literally ``deque.append``, with encoding, the
        write, the fsync, and horizon tracking all on the group-commit
        thread.  Fault injection (``crash_after``) needs the disk state
        at the crash point to be exactly reproducible, so it takes the
        synchronous generic path instead and checks the LSN per event.
        """
        track = self._track
        crash_at = self._crash_at
        if crash_at is None:
            # attrgetter + map keep the batch extraction in C — it runs
            # with the GIL held, so every instruction it saves comes
            # straight off the feed path even with the writer on its
            # own core.
            fields = operator.attrgetter("type", "timestamp",
                                         "attributes", "seq")

            def extract(events: list) -> list:
                return list(map(fields, events))

            def on_seal(lsn: int, event: Event) -> None:
                track(lsn, event.timestamp)

            hook = self._wal.start_event_mode(extract, on_seal)
        else:
            append = self._wal.append

            def hook(event: Event) -> None:
                lsn = append((event.type, event.timestamp,
                              event.attributes, event.seq))
                if not lsn & 7:   # horizon tracking is sampled
                    track(lsn, event.timestamp)
                if lsn + 1 >= crash_at:
                    self._hard_crash()

        # With checkpoints disabled the cadence never fires; skip the
        # per-event callback entirely rather than count toward nothing.
        post = self.after_feed if self._cadence != float("inf") else None
        self._processor.set_persistence_hooks(hook, post)

    def require_live(self) -> None:
        """Raise unless the manager is between ``recover()`` and
        ``close()`` — the host's per-batch guard for the fused write
        path."""
        if self._live:
            return
        if self._finalized:
            raise PersistenceError("persistence already finalized")
        raise PersistenceError(
            "persistence is enabled but recover() has not run; "
            "call recover() after registering queries and before "
            "the first event")

    def after_feed(self) -> tuple | list[tuple[str, CompositeEvent]]:
        """Bookkeeping after one live event: trigger a periodic
        checkpoint when due; returns any matches its drain barrier
        forced out (they are part of the stream's results)."""
        count = self._events_since_ckpt + 1
        self._events_since_ckpt = count
        if count < self._cadence:
            return ()
        return self.checkpoint()

    def _on_delivery(self, name: str, result: CompositeEvent) -> bool:
        if self._suppress_all:
            self.suppressed_matches += 1
            if self._collect is not None:
                self._collect[0].append((name, result))
                self._collect[1].append((name, result))
            return False
        ordinal = self._ordinal
        self._ordinal += 1
        if ordinal < self._durable:
            if self._collect is not None:
                # Replay: already durable AND already delivered by the
                # crashed incarnation — report it, do not re-deliver.
                self.suppressed_matches += 1
                self._collect[0].append((name, result))
                self._collect[1].append((name, result))
                return False
            # Live re-feed of the WAL's lost tail (the group-commit
            # window a crash can drop): the match is already in the out
            # log, but *this* incarnation has never delivered it.  Skip
            # the duplicate append, deliver the match.
            self.redelivered_matches += 1
            return True
        self._out.append(encode_match(name, result))
        self.out_records += 1
        if self._collect is not None:
            self._collect[0].append((name, result))
        return True

    def _track(self, lsn: int, timestamp: float) -> None:
        # Sampled: once per sealed group on the live path (possibly on
        # the WAL writer thread — checkpoint reads happen behind its
        # drain barrier), every 8th LSN during replay.  The horizon
        # needs a *lower* bound, not an exact frontier, and pruning
        # keeps the last entry below the cutoff, so the bound stays
        # conservative by at most one sample gap.
        if timestamp > self._max_ts:
            self._max_ts = timestamp
        if self._max_window is None:
            return  # unbounded window: the horizon is pinned at 0
        frontier = self._frontier
        frontier.append((lsn, timestamp))
        cutoff = self._max_ts - self._max_window
        while len(frontier) > 1 and frontier[1][1] < cutoff:
            frontier.popleft()

    def _replay_horizon(self) -> int:
        if self._max_window is None:
            return 0
        if not self._stateful or not self._frontier:
            return self._wal.next_lsn
        return self._frontier[0][0]

    def sync(self) -> None:
        """Durability barrier without a checkpoint: drain the WAL's
        group-commit writer and fsync both logs.  After it returns,
        every appended event and every delivered match is on stable
        storage."""
        if not self._opened:
            raise PersistenceError("recover() must run before sync()")
        self._wal.sync()
        self._out.sync()

    # -- checkpoints ----------------------------------------------------------

    def checkpoint(self) -> list[tuple[str, CompositeEvent]]:
        """Drain in-flight work, sync both logs, and write one atomic
        checkpoint; returns the matches the drain barrier released."""
        if not self._opened:
            raise PersistenceError("recover() must run before "
                                   "checkpoint()")
        started = time.perf_counter()
        drained = self._processor.drain()
        self._wal.sync()
        self._out.sync()
        snapshot = {
            "version": CHECKPOINT_VERSION,
            "wal_lsn": self._wal.next_lsn,
            "emitted": self._ordinal,
            "replay_lsn": self._replay_horizon(),
            "stream_time": None if self._max_ts == float("-inf")
            else self._max_ts,
            "db": self._host.event_db.to_snapshot(),
            "metrics": collector_snapshot(self._processor.metrics),
        }
        self._store.write(snapshot)
        self._store.gc(self.config.keep_checkpoints)
        horizons = self._store.horizons()
        if horizons:
            self._wal.gc(min(replay for _, replay in horizons))
        self.checkpoints_written += 1
        self.last_checkpoint_lsn = snapshot["wal_lsn"]
        self.last_checkpoint_seconds = time.perf_counter() - started
        self._events_since_ckpt = 0
        tracer = self._processor.tracer
        if tracer is not None:
            tracer.record(
                "checkpoint", ts=snapshot["stream_time"] or 0.0,
                duration=self.last_checkpoint_seconds,
                detail={"wal_lsn": snapshot["wal_lsn"],
                        "emitted": snapshot["emitted"],
                        "replay_lsn": snapshot["replay_lsn"]},
                trace_id=-1)
        return drained

    def finalize(self) -> list[tuple[str, CompositeEvent]]:
        """End of stream: write a final checkpoint and close the logs."""
        if not self._opened or self._finalized:
            return []
        drained = self.checkpoint()
        self.close()
        return drained

    def close(self) -> None:
        """Sync and close the logs without checkpointing."""
        if not self._opened or self._finalized:
            return
        self._finalized = True
        self._live = False
        self._processor.remove_lifecycle_listener(self._on_lifecycle)
        self._processor.set_persistence_hooks(None, None)
        self._out.close()
        self._wal.close()

    # -- fault injection -------------------------------------------------------

    def _hard_crash(self) -> None:  # pragma: no cover - kills the process
        # The differential crash tests spawn the demo with
        # start_new_session=True, making it a process-group leader;
        # killing the whole group takes daemonized shard workers down
        # with it, exactly like an external kill -9 of the group.
        if hasattr(os, "killpg") and os.getpid() == os.getpgrp():
            os.killpg(os.getpgrp(), signal.SIGKILL)
        os.kill(os.getpid(), signal.SIGKILL)

    # -- introspection --------------------------------------------------------

    def gauges(self) -> dict[str, Any]:
        """WAL/checkpoint gauges for the metrics exporter."""
        if not self._opened:
            return {"opened": 0}
        return {
            "opened": 1,
            "wal_records": self._wal.next_lsn,
            "wal_oldest_lsn": self._wal.oldest_lsn,
            "wal_segments": self._wal.segment_count,
            "wal_bytes": self._wal.total_bytes,
            "wal_fsyncs": self._wal.fsyncs,
            "wal_queue_depth": self._wal.queue_depth,
            "wal_truncated_bytes": self._wal.truncated_bytes,
            "out_records": self.out_records,
            "checkpoints_written": self.checkpoints_written,
            "last_checkpoint_lsn": self.last_checkpoint_lsn,
            "last_checkpoint_seconds": self.last_checkpoint_seconds,
            "replayed_events": self.replayed_events,
            "suppressed_matches": self.suppressed_matches,
            "redelivered_matches": self.redelivered_matches,
            "skipped_events": self.skipped_events,
        }
