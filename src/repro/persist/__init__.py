"""Durable persistence and crash recovery: WAL + checkpoints +
exactly-once restart (see ``docs/persistence.md``)."""

from repro.persist.checkpoint import CheckpointStore
from repro.persist.config import FsyncPolicy, PersistenceConfig
from repro.persist.manager import OUT_LOG, PersistenceManager, \
    RecoveryReport
from repro.persist.wal import WriteAheadLog

__all__ = [
    "CheckpointStore",
    "FsyncPolicy",
    "OUT_LOG",
    "PersistenceConfig",
    "PersistenceManager",
    "RecoveryReport",
    "WriteAheadLog",
]
