"""The segmented, group-committed write-ahead log of cleaned events.

The log stores *items* (any ``marshal``-serializable value; the manager
uses compact event tuples).  Appends go to an in-memory group first;
when the group fills — every append, for ``fsync=always`` — it is
sealed into **one** framed record (length + CRC32 header, ``marshal``
payload of the item list).  Group framing is what makes the write path
cheap: encoding, checksumming, and the write are amortized across the
group.

Two write paths share that format:

* The **generic path** (:meth:`append`) is fully synchronous: groups
  are encoded and written in the foreground, and ``every_n`` fsyncs
  inline once per ``interval`` items (rounded to a group boundary).
  Deterministic and simple — it serves the unit tests and the
  fault-injection hot path, where the disk state at a crash point must
  be exactly reproducible.

* The **event path** (:meth:`start_event_mode`) is the live hot path.
  The returned hook *is* ``deque.append`` — a single C call, no Python
  frame — and a background group-commit thread lingers a few
  milliseconds, drains whatever queued, and writes it as
  ``group_items``-sized frames, fsyncing per the policy interval.  The
  fsync is pure I/O wait, so even on one core it overlaps with the
  processor's compute instead of stalling it.  Because ``never`` and
  ``always`` promise synchronous foreground semantics (tests abandon a
  log mid-run and reopen it in the same process), only ``every_n``
  runs the background thread; the others seal in the foreground.

A process kill can lose at most the queued-but-unwritten suffix plus
the not-yet-fsynced page cache — always a *suffix* of the append
order; recovery reconciles it by re-reading the deterministic source
past the WAL end.

Segment files are named for their first LSN (``00000042.wal``) and
rotate past a byte budget.  LSNs are dense — item *n* of the log has
LSN *n* — so a count of items is also the next LSN.  Opening the log
re-scans the segments, verifies the names form one contiguous LSN
range, and truncates a torn tail (a crash mid-write) off the last
segment.  Segments wholly below a checkpoint's replay horizon can be
garbage-collected.
"""

from __future__ import annotations

import marshal
import os
import re
import threading
from collections import deque
from typing import Any, Callable, Iterator

from repro.errors import PersistenceError
from repro.persist.config import FsyncPolicy
from repro.resilience.retry import retry_call
from repro.persist.records import HEADER_BYTES, frame, iter_frames

_SEGMENT_RE = re.compile(r"^(\d{8,})\.wal$")

#: Items per sealed group (the unit of encode/checksum/write
#: amortization).  An fsync interval shorter than this seals earlier.
GROUP_ITEMS = 64

#: How long the background group-commit writer waits for more events
#: before flushing what it has (the durability latency of an idle
#: stream; configurable via ``PersistenceConfig.linger_ms``).
LINGER_SECONDS = 0.002


def segment_name(first_lsn: int) -> str:
    return f"{first_lsn:08d}.wal"


class WriteAheadLog:
    """Append/replay access to one directory's WAL segments."""

    def __init__(self, directory: str, policy: FsyncPolicy,
                 segment_max_bytes: int = 4 * 1024 * 1024,
                 group_items: int = GROUP_ITEMS,
                 linger_seconds: float = LINGER_SECONDS,
                 injector=None):
        self.directory = directory
        self._policy = policy
        # Resilience: a FaultInjector arms the ``wal.write``/``wal.fsync``
        # chaos sites, and armed paths go through retry_call (transient
        # OSErrors are retried with backoff).  None keeps the hot path
        # exactly as before — not even a branch is added, because the
        # helpers below special-case it first.
        self._injector = injector
        self._segment_max_bytes = segment_max_bytes
        self._linger = linger_seconds
        self._mode = policy.mode
        if self._mode == "always":
            self._group_items = 1
        elif self._mode == "every_n":
            self._group_items = max(1, min(group_items, policy.interval))
        else:
            self._group_items = max(1, group_items)
        # every_n only: fsync once per this many sealed groups, so the
        # cadence costs nothing per append.  An interval that is not a
        # multiple of the group rounds *down* (fsyncs slightly more
        # often than asked — durability-conservative).
        self._seals_per_fsync = \
            max(1, policy.interval // self._group_items) \
            if self._mode == "every_n" else 0
        self._seals_since_fsync = 0
        os.makedirs(directory, exist_ok=True)
        # (first_lsn, path, item count) per surviving segment, sorted.
        self._segments: list[list] = []
        self.truncated_bytes = 0
        self._scan_existing()
        if not self._segments:
            self._segments.append(
                [0, os.path.join(directory, segment_name(0)), 0])
        last = self._segments[-1]
        self.next_lsn = last[0] + last[2]
        self._pending: list[Any] = []
        self.fsyncs = 0
        # Event-mode state (started by start_event_mode).
        self._extract: Callable[[list], list] | None = None
        self._on_seal: Callable[[int, Any], None] | None = None
        self._queue: deque | None = None
        self._cond = threading.Condition()
        self._writer: threading.Thread | None = None
        self._writer_busy = False
        self._writer_stop = False
        self._in_barrier = False
        self._handle = open(last[1], "ab", buffering=0)
        self._fd = self._handle.fileno()
        self._segment_bytes = os.fstat(self._fd).st_size

    def _scan_existing(self) -> None:
        found: list[tuple[int, str]] = []
        for entry in os.listdir(self.directory):
            match = _SEGMENT_RE.match(entry)
            if match is not None:
                found.append((int(match.group(1)),
                              os.path.join(self.directory, entry)))
        found.sort()
        for position, (first_lsn, path) in enumerate(found):
            items, valid_end, size = self._scan_segment(path)
            if valid_end < size:
                if position != len(found) - 1:
                    raise PersistenceError(
                        f"{path}: corrupt record in a non-final WAL "
                        f"segment; the log is not contiguous")
                with open(path, "r+b") as handle:
                    handle.truncate(valid_end)
                self.truncated_bytes += size - valid_end
            self._segments.append([first_lsn, path, items])
        for previous, current in zip(self._segments,
                                     self._segments[1:]):
            if previous[0] + previous[2] != current[0]:
                raise PersistenceError(
                    f"WAL segments in {self.directory} do not form a "
                    f"contiguous LSN range: {previous[1]} holds "
                    f"[{previous[0]}, {previous[0] + previous[2]}) but "
                    f"the next segment starts at {current[0]}")

    @staticmethod
    def _scan_segment(path: str) -> tuple[int, int, int]:
        """``(item count, valid_end, file size)`` of one segment.  A
        frame whose payload fails to unmarshal counts as torn, exactly
        like a bad checksum."""
        with open(path, "rb") as handle:
            data = handle.read()
        items = 0
        valid_end = 0
        for offset, payload in iter_frames(data):
            try:
                group = marshal.loads(payload)
            except (ValueError, EOFError, TypeError):
                break
            items += len(group)
            valid_end = offset + HEADER_BYTES + len(payload)
        return items, valid_end, len(data)

    # -- the generic (synchronous) path ---------------------------------------

    def append(self, item: Any) -> int:
        """Append one item to the open group; returns its LSN.  The
        item must be ``marshal``-serializable."""
        if self._extract is not None:
            raise PersistenceError(
                "the WAL is in event mode; use the hook returned by "
                "start_event_mode()")
        lsn = self.next_lsn
        self.next_lsn = lsn + 1
        pending = self._pending
        pending.append(item)
        if len(pending) >= self._group_items:
            self._seal()
        return lsn

    def _seal(self) -> None:
        """Close the open group: encode it as one frame, write it, and
        fsync per the policy; rotate the segment past its byte budget."""
        pending = self._pending
        if not pending:
            return
        if self._extract is not None:
            # Foreground event mode (never/always): the pending list
            # holds raw events; LSNs are assigned here, per group.
            count = len(pending)
            self._segments[-1][2] += count
            last = pending[-1]
            self.next_lsn += count
            items = self._extract(pending)
            on_seal = self._on_seal
        else:
            self._segments[-1][2] += len(pending)
            items = pending
            on_seal, last = None, None
        framed = frame(marshal.dumps(items))
        self._write_bytes(framed)
        self._segment_bytes += len(framed)
        if self._mode == "always":
            self._fsync_fd()
            self.fsyncs += 1
        elif self._mode == "every_n":
            self._seals_since_fsync += 1
            if self._seals_since_fsync >= self._seals_per_fsync:
                self._fsync_fd()
                self.fsyncs += 1
                self._seals_since_fsync = 0
        pending.clear()
        if on_seal is not None:
            on_seal(self.next_lsn - 1, last)
        if self._segment_bytes >= self._segment_max_bytes:
            self._rotate()

    # -- the event (hot) path -------------------------------------------------

    def start_event_mode(self, extract: Callable[[list], list],
                         on_seal: Callable[[int, Any], None]
                         | None = None) -> Callable[[Any], None]:
        """Switch the log to its event hot path and return the
        per-event append hook.

        *extract* maps a batch of appended objects to their
        ``marshal``-serializable items at seal time, so the hook itself
        stores only a reference.  *on_seal* (optional) is called after
        each sealed group with ``(last_lsn, last_object)`` — under
        ``every_n`` it runs on the writer thread and must be cheap and
        thread-agnostic.

        For ``every_n`` the hook is literally ``deque.append`` and a
        background thread group-commits the queue (see the module
        docstring); for ``never``/``always`` sealing stays synchronous
        in the foreground.  The generic :meth:`append` is disabled once
        event mode starts — the two paths assign LSNs differently and
        must not interleave.
        """
        if self._extract is not None:
            raise PersistenceError("event mode already started")
        self._seal()   # anything appended generically is sealed first
        self._extract = extract
        self._on_seal = on_seal
        if self._mode != "every_n":
            pending = self._pending
            group_items = self._group_items
            seal = self._seal

            def fast_append(event: Any) -> None:
                pending.append(event)
                if len(pending) >= group_items:
                    seal()

            return fast_append
        self._queue = deque()
        self._writer = threading.Thread(
            target=self._writer_loop, name="wal-writer", daemon=True)
        self._writer.start()
        return self._queue.append

    def _writer_loop(self) -> None:
        """The group-commit thread: linger, drain the queue, write it
        as group-sized frames.  Owns the file handle while running —
        the foreground only touches it behind the :meth:`_drain_writer`
        barrier."""
        cond = self._cond
        queue = self._queue
        chunk = self._group_items
        while True:
            with cond:
                while not queue and not self._writer_stop:
                    self._writer_busy = False
                    cond.notify_all()
                    cond.wait(self._linger)
                if not queue and self._writer_stop:
                    self._writer_busy = False
                    cond.notify_all()
                    return
                self._writer_busy = True
            batch: list = []
            grab = batch.append
            pop = queue.popleft
            while True:
                try:
                    grab(pop())
                except IndexError:
                    break
            for start in range(0, len(batch), chunk):
                self._write_group(batch[start:start + chunk])

    def _write_group(self, events: list) -> None:
        """Writer-thread body of one sealed group (``every_n`` event
        mode): assign LSNs, encode, write, fsync on cadence."""
        count = len(events)
        self._segments[-1][2] += count
        self.next_lsn += count
        data = frame(marshal.dumps(self._extract(events)))
        self._write_bytes(data)
        self._segment_bytes += len(data)
        self._seals_since_fsync += 1
        if self._seals_since_fsync >= self._seals_per_fsync and \
                not self._in_barrier:
            # Inside a sync() barrier the cadence fsyncs are redundant
            # — the barrier ends with one fsync covering everything —
            # so a long queued tail drains at write speed, not at one
            # journal commit per group.
            try:
                self._fsync_fd()
            except OSError:  # pragma: no cover - fd closed mid-GC
                pass
            self.fsyncs += 1
            self._seals_since_fsync = 0
        if self._on_seal is not None:
            self._on_seal(self.next_lsn - 1, events[-1])
        if self._segment_bytes >= self._segment_max_bytes:
            self._rotate()

    def _drain_writer(self) -> None:
        """Barrier: wait until the queue is empty and the writer is
        between batches — afterwards every appended event is written
        (not necessarily fsynced) and ``next_lsn`` is exact."""
        if self._writer is None:
            return
        with self._cond:
            self._cond.notify_all()
            while self._queue or self._writer_busy:
                self._cond.wait()

    def _stop_writer(self) -> None:
        if self._writer is None:
            return
        with self._cond:
            self._writer_stop = True
            self._cond.notify_all()
        self._writer.join()
        self._writer = None

    # -- shared machinery -----------------------------------------------------

    def _rotate(self) -> None:
        # Runs on whichever thread seals: the foreground for the
        # generic and never/always paths, the writer thread for
        # every_n event mode.  Never both — event mode disables the
        # generic path, and the foreground only touches the handle
        # behind the drain barrier.
        self._handle.close()
        path = os.path.join(self.directory, segment_name(self.next_lsn))
        self._segments.append([self.next_lsn, path, 0])
        self._handle = open(path, "ab", buffering=0)
        self._fd = self._handle.fileno()
        self._segment_bytes = 0

    def _write_bytes(self, data: bytes) -> None:
        """One frame write; with an injector armed, transient (and
        injected) OSErrors are retried *before* any bytes land, so a
        retry can never duplicate a frame."""
        injector = self._injector
        if injector is None:
            os.write(self._fd, data)
            return

        def attempt():
            injector.maybe_raise("wal.write")
            os.write(self._fd, data)
        retry_call(attempt, retry_on=(OSError,), base_delay=0.001,
                   max_delay=0.02)

    def _fsync_fd(self) -> None:
        injector = self._injector
        if injector is None:
            os.fsync(self._fd)
            return

        def attempt():
            injector.maybe_raise("wal.fsync")
            os.fsync(self._fd)
        retry_call(attempt, retry_on=(OSError,), base_delay=0.001,
                   max_delay=0.02)

    def sync(self) -> None:
        """Barrier: seal the open group, drain the background writer,
        and fsync synchronously — afterwards every appended item is on
        stable storage."""
        self._in_barrier = True
        try:
            self._seal()
            self._drain_writer()
            self._fsync_fd()
            self.fsyncs += 1
            self._seals_since_fsync = 0
        finally:
            self._in_barrier = False

    def close(self) -> None:
        if self._handle.closed:
            return
        self.sync()
        self._stop_writer()
        self._handle.close()

    # -- replay ---------------------------------------------------------------

    def replay(self, from_lsn: int = 0) -> Iterator[tuple[int, Any]]:
        """Yield ``(lsn, item)`` for every item with ``lsn >=
        from_lsn``, oldest first."""
        self._seal()            # the open group must be readable,
        self._drain_writer()    # and actually in the file
        for first_lsn, path, count in list(self._segments):
            if first_lsn + count <= from_lsn or count == 0:
                continue
            with open(path, "rb") as handle:
                data = handle.read()
            lsn = first_lsn
            for _, payload in iter_frames(data):
                for item in marshal.loads(payload):
                    if lsn >= from_lsn:
                        yield lsn, item
                    lsn += 1

    # -- garbage collection ----------------------------------------------------

    def gc(self, below_lsn: int) -> int:
        """Remove segments whose items all have ``lsn < below_lsn``
        (never the active one); returns the number removed."""
        removed = 0
        while len(self._segments) > 1:
            first_lsn, path, count = self._segments[0]
            if first_lsn + count > below_lsn:
                break
            os.remove(path)
            self._segments.pop(0)
            removed += 1
        return removed

    # -- introspection --------------------------------------------------------

    @property
    def oldest_lsn(self) -> int:
        """The first LSN still on disk (> 0 once GC has run)."""
        return self._segments[0][0]

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    @property
    def queue_depth(self) -> int:
        """Events appended but not yet sealed (either write path)."""
        queued = len(self._queue) if self._queue is not None else 0
        return queued + len(self._pending)

    @property
    def total_bytes(self) -> int:
        total = 0
        for _, path, _ in self._segments[:-1]:
            try:
                total += os.path.getsize(path)
            except OSError:
                pass
        return total + self._segment_bytes
