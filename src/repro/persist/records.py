"""Record framing and codecs shared by the WAL and the match-output log.

Every record is framed as an 8-byte little-endian header — payload
length then CRC32 of the payload — followed by the payload bytes.  A
reader walks frames until the file ends or a frame fails its length or
checksum test; everything from the first bad frame on is a *torn tail*
(a crash mid-append) and is truncated away on open.

The WAL frames ``marshal``-encoded groups of event items (see
:mod:`repro.persist.wal`); the match-output log frames one ``marshal``
record per delivered match, carrying the producing query's name and the
composite event's type, interval, attributes, and INTO stream.  Both
codecs are deterministic — floats round-trip exactly and attribute
insertion order is preserved — so a byte-level comparison of two logs
is a semantic comparison of their histories.
"""

from __future__ import annotations

import marshal
import os
import struct
import zlib
from typing import Any, Iterator

from repro.events.event import CompositeEvent, Event
from repro.persist.config import FsyncPolicy

_HEADER = struct.Struct("<II")
HEADER_BYTES = _HEADER.size

# A frame claiming more than this is corruption, not a record; refusing
# it keeps a torn length field from triggering a giant allocation.
MAX_RECORD_BYTES = 64 * 1024 * 1024


def frame(payload: bytes) -> bytes:
    """One framed record: length + CRC32 header, then the payload."""
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def iter_frames(data: bytes) -> Iterator[tuple[int, bytes]]:
    """Yield ``(offset, payload)`` for every intact frame in *data*,
    stopping at the first torn or corrupt one."""
    offset = 0
    total = len(data)
    while offset + HEADER_BYTES <= total:
        length, crc = _HEADER.unpack_from(data, offset)
        end = offset + HEADER_BYTES + length
        if length > MAX_RECORD_BYTES or end > total:
            return
        payload = data[offset + HEADER_BYTES:end]
        if zlib.crc32(payload) != crc:
            return
        yield offset, payload
        offset = end


def scan_records(path: str) -> tuple[list[bytes], int, int]:
    """Read every intact record of *path*.

    Returns ``(payloads, valid_end, file_size)``; ``valid_end`` is the
    offset just past the last intact record (``valid_end < file_size``
    means the file has a torn tail).  A missing file reads as empty.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return [], 0, 0
    payloads: list[bytes] = []
    valid_end = 0
    for offset, payload in iter_frames(data):
        payloads.append(payload)
        valid_end = offset + HEADER_BYTES + len(payload)
    return payloads, valid_end, len(data)


def truncate_file(path: str, size: int) -> None:
    """Cut *path* down to *size* bytes (drop a torn tail)."""
    with open(path, "r+b") as handle:
        handle.truncate(size)


class RecordWriter:
    """Append-only framed-record file under one fsync policy."""

    def __init__(self, path: str, policy: FsyncPolicy):
        self.path = path
        self._policy = policy
        self._handle = open(path, "ab")
        self._since_sync = 0
        self.records = 0
        self.bytes_written = os.fstat(self._handle.fileno()).st_size
        self.fsyncs = 0

    def append(self, payload: bytes) -> None:
        framed = frame(payload)
        self._handle.write(framed)
        self.records += 1
        self.bytes_written += len(framed)
        mode = self._policy.mode
        if mode == "always":
            self._fsync()
        elif mode == "never":
            self._handle.flush()
        else:  # every_n
            self._since_sync += 1
            if self._since_sync >= self._policy.interval:
                self._fsync()

    def sync(self) -> None:
        """Force everything appended so far to stable storage."""
        self._fsync()

    def _fsync(self) -> None:
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.fsyncs += 1
        self._since_sync = 0

    def close(self) -> None:
        if not self._handle.closed:
            self._fsync()
            self._handle.close()


# -- codecs ------------------------------------------------------------------

def event_item(event: Event) -> tuple:
    """The compact, ``marshal``-serializable WAL item for one cleaned
    event.  ``marshal`` round-trips ints, floats, and strings exactly
    and is several times faster than JSON — it is what keeps the WAL
    write path off the feed path's critical percentiles."""
    return (event.type, event.timestamp, event.attributes, event.seq)


def event_from_item(item: tuple) -> Event:
    event_type, timestamp, attributes, seq = item
    return Event(event_type, timestamp, attributes, seq)


def encode_match(name: str, result: CompositeEvent) -> bytes:
    record = {"n": name, "y": result.type, "s": result.start,
              "e": result.end, "m": result.stream,
              "a": result.attributes}
    try:
        return marshal.dumps(record)
    except ValueError:
        # RETURN-less queries carry raw bindings (Event objects, Kleene
        # lists of them) in their attributes; repr is deterministic, so
        # byte equality of two out logs still means semantic equality.
        record["a"] = {key: _marshallable(value)
                       for key, value in result.attributes.items()}
        return marshal.dumps(record)


def _marshallable(value: Any) -> Any:
    if isinstance(value, (int, float, str, bool, bytes, type(None))):
        return value
    if isinstance(value, (list, tuple)):
        return [_marshallable(entry) for entry in value]
    return repr(value)


def decode_match(payload: bytes) -> dict[str, Any]:
    return marshal.loads(payload)
