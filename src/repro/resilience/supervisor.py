"""Shard supervision: restart budgets and per-shard circuit breakers.

The sharded backends already know *how* to restart a worker (respawn +
journal replay, PR 1); the supervisor decides *whether*.  Each shard
gets a circuit breaker:

* **closed** — failures are tolerated; each one spends restart budget.
  More than ``max_restarts`` failures inside ``restart_window`` seconds
  opens the breaker.
* **open** — the shard is abandoned (degraded mode); no restarts.  After
  ``cooldown`` seconds the breaker moves to half-open.
* **half-open** — the next routing attempt is allowed to revive the
  shard as a probe.  A successful response closes the breaker (and
  clears the failure history); another failure re-opens it immediately.

The clock is injectable so every transition is unit-testable without
sleeping.
"""

from __future__ import annotations

import time
from collections import deque

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Failure-rate gate for one shard."""

    def __init__(self, max_restarts: int = 3, window: float = 30.0,
                 cooldown: float = 10.0, clock=time.monotonic,
                 on_transition=None):
        self.max_restarts = max_restarts
        self.window = window
        self.cooldown = cooldown
        self.opens = 0
        self._clock = clock
        self._on_transition = on_transition
        self._state = CLOSED
        self._opened_at = 0.0
        self._failures: deque[float] = deque()

    def state(self) -> str:
        if (self._state == OPEN
                and self._clock() - self._opened_at >= self.cooldown):
            self._set(HALF_OPEN)
        return self._state

    def record_failure(self) -> bool:
        """Register one worker failure; return True when a restart is
        still within budget."""
        state = self.state()
        if state == OPEN:
            return False
        if state == HALF_OPEN:
            # The probe failed: straight back to open.
            self._open()
            return False
        now = self._clock()
        self._failures.append(now)
        while self._failures and now - self._failures[0] > self.window:
            self._failures.popleft()
        if len(self._failures) > self.max_restarts:
            self._open()
            return False
        return True

    def record_success(self) -> None:
        if self.state() == HALF_OPEN:
            self._failures.clear()
            self._set(CLOSED)

    def force_open(self) -> None:
        if self.state() != OPEN:
            self._open()

    def _open(self) -> None:
        self.opens += 1
        self._opened_at = self._clock()
        self._set(OPEN)

    def _set(self, state: str) -> None:
        previous, self._state = self._state, state
        if previous != state and self._on_transition is not None:
            self._on_transition(previous, state)


class ShardSupervisor:
    """One breaker per shard plus the hang-detection budget, with a
    single ``on_event`` fan-out for observability (tracer spans,
    metrics)."""

    def __init__(self, shards: int, hang_timeout: float = 5.0,
                 max_restarts: int = 3, restart_window: float = 30.0,
                 cooldown: float = 10.0, clock=time.monotonic,
                 on_event=None):
        self.hang_timeout = hang_timeout
        self.on_event = on_event
        self._breakers = {
            shard: CircuitBreaker(
                max_restarts=max_restarts, window=restart_window,
                cooldown=cooldown, clock=clock,
                on_transition=self._transition_hook(shard))
            for shard in range(shards)}

    @classmethod
    def from_config(cls, config, shards: int, clock=time.monotonic,
                    on_event=None) -> "ShardSupervisor":
        return cls(shards, hang_timeout=config.hang_timeout,
                   max_restarts=config.max_restarts,
                   restart_window=config.restart_window,
                   cooldown=config.breaker_cooldown, clock=clock,
                   on_event=on_event)

    def record_failure(self, shard: int) -> bool:
        return self._breakers[shard].record_failure()

    def record_success(self, shard: int) -> None:
        self._breakers[shard].record_success()

    def force_open(self, shard: int) -> None:
        self._breakers[shard].force_open()

    def state(self, shard: int) -> str:
        return self._breakers[shard].state()

    def states(self) -> dict[int, str]:
        return {shard: breaker.state()
                for shard, breaker in self._breakers.items()}

    def emit(self, kind: str, shard: int, detail: dict) -> None:
        if self.on_event is not None:
            self.on_event(kind, shard, detail)

    def _transition_hook(self, shard: int):
        def hook(previous: str, state: str) -> None:
            self.emit("breaker", shard, {"from": previous, "to": state})
        return hook
