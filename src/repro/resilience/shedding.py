"""Watermark-safe load shedding for overloaded shards.

When a shard's input queue is saturated (``outstanding batches >=
queue_capacity``), the default is today's behavior: block the
coordinator until the worker catches up (``block``).  The alternative
policies trade completeness for liveness — but *never* correctness of
time: a shed event is not silently dropped, it is converted into a
watermark entry carrying the event's timestamp, so window expiry and
trailing-negation release on the shard stay exactly as prompt as they
would have been.

Policies:

* ``block`` — backpressure (default; sheds nothing).
* ``drop-newest`` — the arriving event is shed.
* ``drop-oldest`` — the oldest still-unsent event in the shard's open
  batch is shed to make room; falls back to drop-newest when nothing
  unsent remains.
* ``sample:P`` — admit each event with probability P, shed otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ResilienceError

KINDS = ("block", "drop-newest", "drop-oldest", "sample")


@dataclass(frozen=True)
class SheddingPolicy:
    kind: str = "block"
    probability: float = 1.0

    @classmethod
    def parse(cls, text: str | None) -> "SheddingPolicy":
        raw = (text or "block").strip()
        if raw.startswith("sample:"):
            try:
                probability = float(raw.split(":", 1)[1])
            except ValueError:
                probability = -1.0
            if not 0.0 <= probability <= 1.0:
                raise ResilienceError(
                    f"bad sampling probability in shedding policy {raw!r} "
                    f"(want sample:P with P in [0, 1])")
            return cls(kind="sample", probability=probability)
        if raw not in ("block", "drop-newest", "drop-oldest"):
            known = ", ".join(("block", "drop-newest", "drop-oldest",
                               "sample:P"))
            raise ResilienceError(
                f"unknown shedding policy {raw!r} (known: {known})")
        return cls(kind=raw)

    @property
    def active(self) -> bool:
        return self.kind != "block"
