"""Resilience layer: deterministic chaos, quarantine, supervision,
load shedding, and retry — all default-off (see ``ResilienceConfig``)."""

from repro.resilience.chaos import (ChaosConfig, FaultInjector, FaultRule,
                                    SITES, mangle_readings)
from repro.resilience.config import ResilienceConfig
from repro.resilience.quarantine import (DeadLetterQueue, DeadLetterRecord,
                                         reading_payload, validate_reading)
from repro.resilience.retry import retry_call, retrying
from repro.resilience.shedding import SheddingPolicy
from repro.resilience.supervisor import (CLOSED, HALF_OPEN, OPEN,
                                         CircuitBreaker, ShardSupervisor)

__all__ = [
    "ChaosConfig", "FaultInjector", "FaultRule", "SITES", "mangle_readings",
    "ResilienceConfig", "DeadLetterQueue", "DeadLetterRecord",
    "reading_payload", "validate_reading", "retry_call", "retrying",
    "SheddingPolicy", "CLOSED", "HALF_OPEN", "OPEN", "CircuitBreaker",
    "ShardSupervisor",
]
