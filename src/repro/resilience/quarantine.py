"""Ingest hardening: reading validation and the dead-letter queue.

The cleaning boundary is where dirty reality meets the engine, so it is
where malformed payloads are caught.  Instead of raising through
``feed()`` (and taking the whole pipeline down with one bad read), a
failing record is *quarantined*: a structured error record — offending
payload, error, stage, timestamps — is appended to an in-memory list
and, when a path is configured, a durable JSONL file that
``repro deadletter list|replay`` can inspect and re-inject.
"""

from __future__ import annotations

import json
import math
import time

#: Timestamps at or beyond this are treated as overflowed garbage; the
#: logical-time conversion would otherwise happily produce absurd epochs.
MAX_TIMESTAMP = 1.0e15

_RECORD_FIELDS = ("stage", "error", "error_type", "payload", "ingest_time",
                  "wall_time")


class DeadLetterRecord:
    """One quarantined payload with its diagnosis."""

    __slots__ = _RECORD_FIELDS

    def __init__(self, stage, error, error_type, payload, ingest_time,
                 wall_time):
        self.stage = stage
        self.error = error
        self.error_type = error_type
        self.payload = payload
        self.ingest_time = ingest_time
        self.wall_time = wall_time

    def to_dict(self) -> dict:
        return {field: getattr(self, field) for field in _RECORD_FIELDS}

    @classmethod
    def from_dict(cls, data: dict) -> "DeadLetterRecord":
        return cls(*(data.get(field) for field in _RECORD_FIELDS))

    def __repr__(self):  # pragma: no cover - debugging aid
        return (f"DeadLetterRecord(stage={self.stage!r}, "
                f"error_type={self.error_type!r}, payload={self.payload!r})")


class DeadLetterQueue:
    """Append-only quarantine sink: in-memory always, JSONL when a path
    is given.  Each line is one :class:`DeadLetterRecord` as JSON."""

    def __init__(self, path: str | None = None, clock=time.time):
        self.path = path
        self.records: list[DeadLetterRecord] = []
        self.on_record = None  # hook: called with each new record
        self._clock = clock
        self._handle = None

    def append(self, stage: str, payload: dict, error,
               ingest_time: float | None = None) -> DeadLetterRecord:
        if isinstance(error, BaseException):
            error_type = type(error).__name__
        else:
            error_type = "ValidationError"
        record = DeadLetterRecord(stage, str(error), error_type, payload,
                                  ingest_time, self._clock())
        self.records.append(record)
        if self.path is not None:
            if self._handle is None:
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(_encode(record.to_dict()) + "\n")
            self._handle.flush()
        if self.on_record is not None:
            self.on_record(record)
        return record

    def __len__(self) -> int:
        return len(self.records)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    @staticmethod
    def load(path: str) -> list[DeadLetterRecord]:
        records = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    records.append(DeadLetterRecord.from_dict(json.loads(line)))
        return records

    @staticmethod
    def rewrite(path: str, records: list[DeadLetterRecord]) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(_encode(record.to_dict()) + "\n")


def _encode(data: dict) -> str:
    # allow_nan=False + the repr fallback keep every line strict JSON
    # even when the quarantined payload contains NaN or exotic objects.
    # (``default`` never fires for float NaN/inf — they are floats — so
    # sanitize on the rare ValueError instead of crashing the sink.)
    try:
        return json.dumps(data, default=repr, allow_nan=False)
    except ValueError:
        return json.dumps(_definite(data), default=repr,
                          allow_nan=False)


def _definite(value):
    """Recursively replace non-finite floats with their repr."""
    if isinstance(value, float) and not math.isfinite(value):
        return repr(value)
    if isinstance(value, dict):
        return {key: _definite(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_definite(item) for item in value]
    return value


def reading_payload(reading) -> dict:
    """A JSON-safe projection of a raw reading (possibly corrupt)."""
    payload = {}
    for attr in ("epc", "reader_id", "time"):
        value = getattr(reading, attr, None)
        if isinstance(value, float) and not math.isfinite(value):
            value = repr(value)
        elif not isinstance(value, (str, int, float, bool, type(None))):
            value = repr(value)
        payload[attr] = value
    return payload


def validate_reading(reading) -> str | None:
    """Diagnose a raw reading; return None when clean, else the problem.

    Checks the schema the cleaning stages silently rely on: string epc
    and reader id, and a finite, non-negative, non-absurd timestamp.
    The happy path is one compound check — this runs once per raw
    reading, on the ingest hot path, whenever a quarantine is attached.
    (``0.0 <= t`` is False for NaN, so the range check covers it.)
    """
    try:
        epc = reading.epc
        reader_id = reading.reader_id
        timestamp = reading.time
        if (type(epc) is str and epc
                and type(reader_id) is str and reader_id
                and type(timestamp) in (float, int)
                and 0.0 <= timestamp < MAX_TIMESTAMP):
            return None
    except AttributeError:
        pass
    return _diagnose_reading(reading)


def _diagnose_reading(reading) -> str | None:
    """The slow path: name exactly what is wrong with the reading."""
    epc = getattr(reading, "epc", None)
    if not isinstance(epc, str) or not epc:
        return f"epc must be a non-empty string, got {epc!r}"
    reader_id = getattr(reading, "reader_id", None)
    if not isinstance(reader_id, str) or not reader_id:
        return f"reader_id must be a non-empty string, got {reader_id!r}"
    timestamp = getattr(reading, "time", None)
    if isinstance(timestamp, bool) or not isinstance(timestamp, (int, float)):
        return f"time must be a number, got {timestamp!r}"
    if not math.isfinite(timestamp):
        return f"time must be finite, got {timestamp!r}"
    if timestamp < 0:
        return f"time must be non-negative, got {timestamp!r}"
    if timestamp >= MAX_TIMESTAMP:
        return f"time overflows the supported range, got {timestamp!r}"
    return None
