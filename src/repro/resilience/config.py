"""Top-level resilience configuration.

One frozen dataclass switches every feature in this package; like
``ShardingConfig`` and ``PersistenceConfig`` it defaults to *off* —
``SaseSystem(resilience=None)`` pays nothing — and validates its spec
strings eagerly so a typo surfaces at construction, not mid-stream.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.resilience.chaos import ChaosConfig
from repro.resilience.shedding import SheddingPolicy


@dataclass(frozen=True)
class ResilienceConfig:
    #: Chaos spec string (see :mod:`repro.resilience.chaos`), or None.
    chaos: str | None = None
    chaos_seed: int = 0
    #: Validate readings at the cleaning boundary and quarantine instead
    #: of raising through ``feed()``.
    quarantine: bool = True
    #: JSONL dead-letter file; None keeps the queue in memory only.
    dead_letter_path: str | None = None
    #: Shedding policy: ``block`` | ``drop-newest`` | ``drop-oldest`` |
    #: ``sample:P``.
    shedding: str = "block"
    #: Supervise shard workers (hang detection + circuit breakers).
    supervise: bool = True
    hang_timeout: float = 5.0
    max_restarts: int = 3
    restart_window: float = 30.0
    breaker_cooldown: float = 10.0

    def __post_init__(self):
        # Parse eagerly: both raise ResilienceError on bad specs.
        ChaosConfig.parse(self.chaos, self.chaos_seed)
        SheddingPolicy.parse(self.shedding)

    def chaos_config(self) -> ChaosConfig | None:
        if not self.chaos:
            return None
        return ChaosConfig.parse(self.chaos, self.chaos_seed)

    def shedding_policy(self) -> SheddingPolicy:
        return SheddingPolicy.parse(self.shedding)
