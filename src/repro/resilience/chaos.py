"""Deterministic fault injection.

Every failure mode this repo defends against — corrupt RFID reads,
transient WAL I/O errors, crashing or wedged shard workers — can be
armed here from a compact textual spec and a seed, so chaos tests and
``repro demo --chaos`` reproduce bit-for-bit.

Spec grammar (comma-separated clauses)::

    clause := site [ '=' rate ] [ '@' nth [ '*' ] ] [ ':' param ]

* ``site`` — one of :data:`SITES` (``ingest.corrupt``, ``wal.write``,
  ``worker.crash``, ...).
* ``=rate`` — per-opportunity probability (default 1.0), drawn from the
  injector's seeded RNG.  Ignored when ``@nth`` is given.
* ``@nth`` — fire deterministically at exactly the nth opportunity, and
  only in the worker's first incarnation (so a restarted worker replays
  its journal without re-tripping the fault — this is what makes
  crash-recovery chaos runs converge).  ``@nth*`` fires at *every*
  multiple of nth in *every* incarnation (used to drive a circuit
  breaker open).
* ``:param`` — free float argument (e.g. ``worker.slow:0.05`` sleep
  seconds).

Examples: ``ingest.corrupt=0.01``, ``wal.write@3``, ``worker.crash@2*``,
``worker.slow=0.5:0.02``.

The ``net.*`` sites target the remote shard tier's TCP links (both the
coordinator's and — via ``repro worker --chaos`` — the daemon's side of
each connection).  They fire through the same seeded per-scope,
per-incarnation counting as every other site, so a partition/reconnect
chaos run replays its journal and converges byte-identically:
``net.drop_conn@3`` severs the third send once, ``net.delay=0.2:0.005``
delays a fifth of sends by 5 ms, ``net.partition@2:0.5`` drops the
second send and refuses reconnects for half a second.
"""

from __future__ import annotations

import random
import re
import zlib
from dataclasses import dataclass, replace as _dc_replace

from repro.errors import ResilienceError


#: Every boundary a fault can be armed at.
SITES = (
    "ingest.corrupt",    # mangle a raw reading (bad epc / NaN / negative time)
    "ingest.duplicate",  # emit a raw reading twice
    "ingest.drop",       # silently lose a raw reading
    "ingest.reorder",    # shuffle the readings of one tick
    "wal.write",         # transient OSError from the WAL write path
    "wal.fsync",         # transient OSError from the WAL fsync path
    "db.dump",           # transient OSError from the checkpoint dump path
    "worker.crash",      # shard worker dies mid-batch (exit / silent return)
    "worker.hang",       # shard worker wedges forever
    "worker.slow",       # shard worker sleeps ``param`` seconds per batch
    "net.delay",         # sleep ``param`` seconds before a socket send
    "net.drop_conn",     # close the TCP connection mid-send
    "net.corrupt",       # flip one byte of a framed send (CRC catches it)
    "net.partition",     # drop the connection and refuse reconnects
                         # for ``param`` seconds (default 0.5)
    "net.slow_read",     # sleep ``param`` seconds before each recv and
                         # shrink the read size (trickle delivery)
)

_CLAUSE = re.compile(
    r"^(?P<site>[a-z_]+\.[a-z_]+)"
    r"(?:=(?P<rate>[0-9]*\.?[0-9]+))?"
    r"(?:@(?P<nth>[0-9]+)(?P<repeat>\*)?)?"
    r"(?::(?P<param>[0-9]*\.?[0-9]+))?$")


@dataclass(frozen=True)
class FaultRule:
    """One armed fault site."""

    site: str
    rate: float = 1.0
    nth: int = 0          # 0 = rate-gated at every opportunity
    repeat: bool = False  # with nth: every multiple, every incarnation
    param: float | None = None


@dataclass(frozen=True)
class ChaosConfig:
    """A parsed, seeded chaos spec.  Immutable and picklable, so it can
    ride inside a ``WorkerSpec`` to process-backend workers."""

    rules: tuple[FaultRule, ...] = ()
    seed: int = 0
    spec: str = ""

    @classmethod
    def parse(cls, spec: str | None, seed: int = 0) -> "ChaosConfig":
        rules: list[FaultRule] = []
        for raw in (spec or "").split(","):
            clause = raw.strip()
            if not clause:
                continue
            match = _CLAUSE.match(clause)
            if match is None:
                raise ResilienceError(
                    f"bad chaos clause {clause!r} (expected "
                    f"site[=rate][@nth[*]][:param])")
            site = match.group("site")
            if site not in SITES:
                known = ", ".join(SITES)
                raise ResilienceError(
                    f"unknown chaos site {site!r} (known: {known})")
            rate = float(match.group("rate") or 1.0)
            if not 0.0 <= rate <= 1.0:
                raise ResilienceError(
                    f"chaos rate for {site} must be in [0, 1], got {rate}")
            rules.append(FaultRule(
                site=site, rate=rate, nth=int(match.group("nth") or 0),
                repeat=match.group("repeat") is not None,
                param=(float(match.group("param"))
                       if match.group("param") is not None else None)))
        return cls(rules=tuple(rules), seed=seed, spec=spec or "")

    def armed(self, prefix: str = "") -> bool:
        return any(rule.site.startswith(prefix) for rule in self.rules)


class FaultInjector:
    """Per-scope fault dispenser over a :class:`ChaosConfig`.

    Each scope (the coordinator, each shard worker) builds its own
    injector so opportunity counting and RNG draws are independent of
    scheduling — two runs with the same seed inject the same faults at
    the same points no matter how threads interleave.
    """

    def __init__(self, config: ChaosConfig, scope: str = "",
                 incarnation: int = 0, on_fault=None):
        self.config = config
        self.scope = scope
        self.incarnation = incarnation
        self.on_fault = on_fault
        mix = zlib.crc32(scope.encode("utf-8"))
        self.rng = random.Random(
            (config.seed << 17) ^ mix ^ (incarnation * 0x9E3779B1))
        self._rules = {rule.site: rule for rule in config.rules}
        self._counts = {site: 0 for site in self._rules}
        #: Faults actually injected, per site.
        self.injected = {site: 0 for site in self._rules}

    def armed(self, prefix: str = "") -> bool:
        return any(site.startswith(prefix) for site in self._rules)

    def trip(self, site: str) -> bool:
        """Count one opportunity at ``site``; return True to inject."""
        rule = self._rules.get(site)
        if rule is None:
            return False
        count = self._counts[site] + 1
        self._counts[site] = count
        if rule.nth:
            if rule.repeat:
                hit = count % rule.nth == 0
            else:
                hit = count == rule.nth and self.incarnation == 0
        else:
            hit = self.rng.random() < rule.rate
        if hit:
            self.injected[site] += 1
            if self.on_fault is not None:
                self.on_fault(site, count)
        return hit

    def maybe_raise(self, site: str) -> None:
        """Raise a transient ``OSError`` when ``site`` trips."""
        if self.trip(site):
            raise OSError(f"chaos[{self.scope}]: injected {site} fault")

    def param(self, site: str, default: float = 0.0) -> float:
        rule = self._rules.get(site)
        if rule is None or rule.param is None:
            return default
        return rule.param

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())


def mangle_readings(injector: FaultInjector, readings: list) -> list:
    """Apply the armed ``ingest.*`` faults to one tick's raw readings."""
    out = []
    for reading in readings:
        if injector.trip("ingest.drop"):
            continue
        if injector.trip("ingest.corrupt"):
            out.append(_corrupt(injector, reading))
            continue
        out.append(reading)
        if injector.trip("ingest.duplicate"):
            out.append(reading)
    if len(out) > 1 and injector.trip("ingest.reorder"):
        injector.rng.shuffle(out)
    return out


def _corrupt(injector: FaultInjector, reading):
    # Cycle through the malformation kinds deterministically so every
    # corruption run exercises all of them.  All four fail
    # ``validate_reading`` and land in the dead-letter queue.
    kind = (injector.injected["ingest.corrupt"] - 1) % 4
    if kind == 0:
        return _dc_replace(reading, epc=None)
    if kind == 1:
        return _dc_replace(reading, epc=12345)
    if kind == 2:
        return _dc_replace(reading, time=float("nan"))
    return _dc_replace(reading, time=-abs(reading.time) - 1.0e18)
