"""Retry with exponential backoff, full jitter, and a deadline.

One helper (:func:`retry_call`) and its decorator form (:func:`retrying`)
cover every transient-I/O site in the repo — WAL write/fsync, the atomic
checkpoint ``os.replace``, process-backend IPC puts — so backoff policy
lives in exactly one place.  Full jitter (delay drawn uniformly from
``[0, min(cap, base * 2**attempt)]``) follows the standard AWS
architecture-blog recipe: it decorrelates retry storms better than
equal or no jitter.
"""

from __future__ import annotations

import functools
import random
import time

#: Module-level RNG for jitter.  Seeded so test runs are repeatable;
#: jitter only shapes *timing*, never behavior, so sharing it is safe.
_JITTER_RNG = random.Random(0x5A5345)


def retry_call(func, *, retry_on=(OSError,), attempts: int = 5,
               base_delay: float = 0.002, max_delay: float = 0.1,
               deadline: float | None = None, sleep=time.sleep,
               clock=time.monotonic, rng=None, on_retry=None,
               on_backoff=None):
    """Call ``func()`` retrying on ``retry_on`` exceptions.

    Raises the last exception once ``attempts`` are exhausted or
    ``deadline`` seconds have passed since the first attempt.
    ``sleep``/``clock``/``rng`` are injectable for tests.
    ``on_backoff``, when given, receives each computed jittered delay
    (seconds) just before sleeping — callers use it to export backoff
    totals as metrics without wrapping ``sleep``.
    """
    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    jitter = rng if rng is not None else _JITTER_RNG
    started = clock()
    for attempt in range(attempts):
        try:
            return func()
        except retry_on as exc:
            if attempt == attempts - 1:
                raise
            elapsed = clock() - started
            if deadline is not None and elapsed >= deadline:
                raise
            cap = min(max_delay, base_delay * (2 ** attempt))
            delay = jitter.random() * cap
            if deadline is not None:
                delay = min(delay, max(0.0, deadline - elapsed))
            if on_retry is not None:
                on_retry(attempt + 1, exc)
            if on_backoff is not None:
                on_backoff(delay)
            sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover


def retrying(**retry_kwargs):
    """Decorator form of :func:`retry_call`."""
    def decorate(func):
        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            return retry_call(lambda: func(*args, **kwargs), **retry_kwargs)
        return wrapper
    return decorate
