"""Structured dataflow tracing: operator-level spans per fed event.

The paper's UI (Figure 3) is built on exposing the processor's *internal
dataflow* as inspectable streams.  :class:`DataflowTracer` makes the same
dataflow observable programmatically: every event fed to the processor
opens a **trace** (one trace id per arrival), and each stage it passes —
``clean`` → ``associate`` → ``dispatch`` → ``scan`` → ``construct`` →
``return`` → ``cascade`` / ``advance`` → ``db_write`` — records a
:class:`Span` into a bounded ring buffer.

Design constraints:

* **low overhead** — the tracer is opt-in; every hook in the hot path is
  a single ``if tracer is not None`` check when disabled, and recording a
  span is one dataclass construction plus a deque append when enabled;
* **sharding-transparent** — worker shards run their own tracer with the
  coordinator's trace id *pinned* per routed entry, ship spans back as
  plain tuples with each batch response, and the coordinator folds them
  into its buffer tagged with the shard id (see ``repro.sharding``);
* **serializable** — spans dump as JSON lines (:meth:`DataflowTracer
  .dump_jsonl`) and render as the Figure-3 intermediate-stream view
  (:func:`repro.ui.console.format_trace_lines`).

Spans recorded outside any event's context (the cleaning pipeline runs
before events enter the processor) carry trace id ``-1``.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import IO, Any, Iterable

#: Trace id for spans not tied to one fed event (cleaning-tick context).
TICK_CONTEXT = -1

#: Per-batch cap on spans a shard worker ships with one response; keeps
#: batch responses bounded even for pathological result explosions.
MAX_SHIPPED_SPANS = 4096


@dataclass
class Span:
    """One operator-level step of an event's journey through the system."""

    trace_id: int
    op: str
    query: str | None = None
    stream: str | None = None
    ts: float | None = None          # stream time the span refers to
    duration: float = 0.0            # wall seconds (0 for instant marks)
    detail: dict = field(default_factory=dict)
    shard: int | None = None         # None: coordinator / unsharded

    def to_dict(self) -> dict:
        record: dict[str, Any] = {"trace": self.trace_id, "op": self.op}
        if self.query is not None:
            record["query"] = self.query
        if self.stream is not None:
            record["stream"] = self.stream
        if self.ts is not None:
            record["ts"] = self.ts
        if self.duration:
            record["duration_us"] = round(self.duration * 1e6, 3)
        if self.shard is not None:
            record["shard"] = self.shard
        if self.detail:
            record["detail"] = self.detail
        return record

    def to_tuple(self) -> tuple:
        """Plain-tuple form for crossing worker process pipes."""
        return (self.trace_id, self.op, self.query, self.stream,
                self.ts, self.duration, self.detail)

    @classmethod
    def from_tuple(cls, raw: tuple, shard: int | None = None) -> "Span":
        trace_id, op, query, stream, ts, duration, detail = raw
        return cls(trace_id=trace_id, op=op, query=query, stream=stream,
                   ts=ts, duration=duration, detail=detail or {},
                   shard=shard)


class DataflowTracer:
    """Ring-buffered span recorder with per-event trace context.

    ``begin(event)`` opens a new trace and becomes the implicit context
    for subsequent ``record`` calls; shard workers instead ``pin`` the
    coordinator-assigned id before processing each routed entry so spans
    recorded on any shard join the same trace.
    """

    def __init__(self, capacity: int = 4096, ship: bool = False):
        self.capacity = capacity
        self._spans: deque[Span] = deque(maxlen=capacity)
        self._next_trace = 0
        self._pinned: int | None = None
        self.current: int = TICK_CONTEXT
        # Worker mode: spans also accumulate in an outbox the transport
        # drains into batch responses.
        self._outbox: list[Span] | None = [] if ship else None
        self.dropped_shipments = 0

    # -- trace context -------------------------------------------------------

    def begin(self, event: Any = None,
              stream: str | None = None) -> int:
        """Open the trace context for one fed event.

        Under a pinned id (shard workers) the pinned trace is reused and
        no ``event`` span is recorded — the coordinator already did.
        """
        if self._pinned is not None:
            self.current = self._pinned
            return self.current
        self.current = self._next_trace
        self._next_trace += 1
        if event is not None:
            self.record("event", stream=stream, ts=event.timestamp,
                        detail={"event_type": event.type,
                                "seq": event.seq})
        return self.current

    def pin(self, trace_id: int) -> None:
        """Adopt a coordinator-assigned trace id (shard workers)."""
        self._pinned = trace_id
        self.current = trace_id

    def unpin(self) -> None:
        self._pinned = None

    # -- recording -----------------------------------------------------------

    def record(self, op: str, *, query: str | None = None,
               stream: str | None = None, ts: float | None = None,
               duration: float = 0.0, detail: dict | None = None,
               trace_id: int | None = None) -> Span:
        span = Span(
            trace_id=self.current if trace_id is None else trace_id,
            op=op, query=query, stream=stream, ts=ts, duration=duration,
            detail=detail if detail is not None else {})
        self._spans.append(span)
        if self._outbox is not None:
            self._outbox.append(span)
        return span

    def fold(self, raw_spans: Iterable[tuple], shard: int) -> None:
        """Fold spans shipped back from a worker shard into this buffer."""
        for raw in raw_spans:
            self._spans.append(Span.from_tuple(raw, shard=shard))

    def drain_shipment(self) -> list[tuple]:
        """Worker side: hand the accumulated spans to the transport
        (bounded by :data:`MAX_SHIPPED_SPANS` per call)."""
        if not self._outbox:
            return []
        shipped = [span.to_tuple()
                   for span in self._outbox[:MAX_SHIPPED_SPANS]]
        self.dropped_shipments += max(
            0, len(self._outbox) - MAX_SHIPPED_SPANS)
        del self._outbox[:]
        return shipped

    # -- inspection ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._spans)

    def spans(self, *, query: str | None = None, op: str | None = None,
              trace_id: int | None = None) -> list[Span]:
        """Recorded spans, optionally filtered."""
        return [span for span in self._spans
                if (query is None or span.query == query)
                and (op is None or span.op == op)
                and (trace_id is None or span.trace_id == trace_id)]

    def traces(self) -> dict[int, list[Span]]:
        """Spans grouped by trace id, in trace order (tick-context spans
        under :data:`TICK_CONTEXT`)."""
        grouped: dict[int, list[Span]] = {}
        for span in self._spans:
            grouped.setdefault(span.trace_id, []).append(span)
        return dict(sorted(grouped.items()))

    def query_flow(self, query: str) -> dict[int, list[Span]]:
        """The traces that touched *query*: per trace, the query's own
        spans plus the trace's context spans (event arrival, dispatch)."""
        flow: dict[int, list[Span]] = {}
        involved = {span.trace_id for span in self._spans
                    if span.query == query}
        for trace_id, spans in self.traces().items():
            if trace_id not in involved:
                continue
            flow[trace_id] = [span for span in spans
                              if span.query == query or span.query is None]
        return flow

    # -- serialization -------------------------------------------------------

    def dump_jsonl(self, target: str | IO[str],
                   query: str | None = None) -> int:
        """Write spans as JSON lines; returns the number written.

        With *query*, only that query's dataflow (its spans plus the
        context spans of traces it participated in) is dumped.
        """
        if query is None:
            selected: Iterable[Span] = list(self._spans)
        else:
            selected = [span for spans in self.query_flow(query).values()
                        for span in spans]
        if isinstance(target, str):
            with open(target, "w", encoding="utf-8") as handle:
                return self._write_jsonl(handle, selected)
        return self._write_jsonl(target, selected)

    @staticmethod
    def _write_jsonl(handle: IO[str], spans: Iterable[Span]) -> int:
        count = 0
        for span in spans:
            handle.write(json.dumps(span.to_dict(), sort_keys=True))
            handle.write("\n")
            count += 1
        return count
