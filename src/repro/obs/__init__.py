"""Observability: dataflow tracing, metrics export, profiling hooks.

Everything here is opt-in; the processing hot paths pay at most one
``is not None`` check per hook when a facility is disabled, and the
code-generated scan emits profiling code only when asked to.
"""

from repro.obs.export import (
    MetricsExporter,
    collector_snapshot,
    parse_prometheus,
    processor_snapshot,
    to_json,
    to_prometheus,
)
from repro.obs.profile import ScanProfile, SlowFeed, SlowFeedLog
from repro.obs.trace import TICK_CONTEXT, DataflowTracer, Span

__all__ = [
    "DataflowTracer",
    "MetricsExporter",
    "ScanProfile",
    "SlowFeed",
    "SlowFeedLog",
    "Span",
    "TICK_CONTEXT",
    "collector_snapshot",
    "parse_prometheus",
    "processor_snapshot",
    "to_json",
    "to_prometheus",
]
