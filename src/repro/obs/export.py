"""Metrics export: serialize the collector to JSON and Prometheus text.

A snapshot gathers three layers into one JSON-serializable dict:

* per-query counters from the :class:`~repro.system.metrics
  .MetricsCollector` (events in, results out, busy time, selectivity,
  p50/p95 feed latency from the reservoir, result freshness);
* per-shard routing counters when the sharded runtime is active;
* per-query plan statistics (:class:`~repro.core.stats.PlanStats`):
  operator in/out counters plus stack and partition high-water gauges;
* WAL/checkpoint gauges from the persistence manager when the exporter
  is constructed with ``persistence=`` (records, segments, bytes,
  fsyncs, checkpoints, replay/suppression counters);
* per-tenant service gauges when constructed with ``service=`` (a
  :class:`~repro.service.QueryService`): registered queries,
  admitted/rejected registrations, shed results, subscription backlog —
  the ``tenants`` section, rendered as ``sase_tenant_*`` samples.

The same snapshot renders as Prometheus text exposition
(:func:`to_prometheus`) for scraping, and :func:`parse_prometheus` reads
that text back for round-trip testing.  :class:`MetricsExporter` wraps a
processor with a file target and an optional every-N-events flush cadence
so a long-running system exports periodically without caller bookkeeping.

Note: under the sharded runtime, query counters fold back from worker
shards via metric deltas, but worker-side ``PlanStats`` stay on their
shard — the coordinator's ``plans`` section covers locally hosted queries
only (the per-query counters remain complete either way).
"""

from __future__ import annotations

import json
from typing import IO, Any

# Prometheus metric name -> (snapshot section, field, help text).
_QUERY_COUNTERS = (
    ("sase_query_events_total", "events_in",
     "Events fed to the query"),
    ("sase_query_results_total", "results_out",
     "Composite events the query produced"),
    ("sase_query_busy_seconds_total", "busy_seconds",
     "Wall time spent inside the query runtime"),
)
_QUERY_GAUGES = (
    ("sase_query_selectivity", "selectivity",
     "Results produced per input event"),
    ("sase_query_last_result_stream_time", "last_result_at",
     "Stream time of the freshest result"),
)
_QUERY_QUANTILES = (
    ("0.5", "p50_feed_seconds"),
    ("0.95", "p95_feed_seconds"),
)
_SHARD_COUNTERS = (
    ("sase_shard_events_routed_total", "events_routed",
     "Events routed to the shard"),
    ("sase_shard_watermarks_total", "watermarks_sent",
     "Watermark ticks broadcast to the shard"),
    ("sase_shard_batches_total", "batches_sent",
     "Batches shipped to the shard"),
    ("sase_shard_results_total", "results_received",
     "Results received back from the shard"),
    ("sase_shard_queue_full_stalls_total", "queue_full_stalls",
     "Submissions that stalled on a full shard queue"),
    ("sase_shard_worker_restarts_total", "worker_restarts",
     "Times the shard's worker was restarted"),
    ("sase_shard_batches_replayed_total", "batches_replayed",
     "Batches replayed after a worker restart"),
    ("sase_shard_worker_hangs_total", "worker_hangs",
     "Hang detections that triggered worker recovery"),
    ("sase_shard_events_shed_total", "events_shed",
     "Events shed by the overload policy (watermark-converted)"),
    ("sase_shard_events_lost_total", "events_lost",
     "Events lost when the shard's circuit breaker opened"),
    ("sase_shard_breaker_opens_total", "breaker_opens",
     "Circuit-breaker open transitions for the shard"),
    ("sase_shard_ring_frames_sent_total", "ring_frames_sent",
     "Frames written to the shard's shared-memory input ring"),
    ("sase_shard_ring_bytes_sent_total", "ring_bytes_sent",
     "Bytes written to the shard's shared-memory input ring"),
    ("sase_shard_ring_frames_received_total", "ring_frames_received",
     "Frames read from the shard's shared-memory response ring"),
    ("sase_shard_ring_bytes_received_total", "ring_bytes_received",
     "Bytes read from the shard's shared-memory response ring"),
    ("sase_shard_pipe_fallbacks_total", "pipe_fallbacks",
     "Messages the ring codec could not carry, sent over the "
     "fallback queue lane"),
    ("sase_shard_transport_spin_waits_total", "spin_waits",
     "Sched-yield spins in the coordinator's hybrid transport wait"),
    ("sase_shard_transport_park_waits_total", "park_waits",
     "Backoff park sleeps in the coordinator's hybrid transport wait"),
    ("sase_shard_remote_reconnects_total", "remote_reconnects",
     "Worker sessions re-established after the first connect"),
    ("sase_shard_remote_heartbeats_total", "remote_heartbeats",
     "Heartbeat pong round-trips completed on the worker connection"),
    ("sase_shard_remote_bytes_sent_total", "remote_bytes_sent",
     "Bytes written to the remote worker's TCP connection"),
    ("sase_shard_remote_bytes_received_total", "remote_bytes_received",
     "Bytes read from the remote worker's TCP connection"),
    ("sase_shard_reconnect_backoff_ms_total", "reconnect_backoff_ms",
     "Milliseconds spent in jittered reconnect backoff for the "
     "worker connection"),
    ("sase_shard_remote_auth_failures_total", "remote_auth_failures",
     "Worker handshakes that failed authentication or version "
     "negotiation"),
    ("sase_shard_remote_partitions_total", "remote_partitions",
     "Failovers where the worker link outlived the reconnect budget "
     "(degraded as partitioned)"),
)
_SHARD_GAUGES = (
    ("sase_shard_remote_inflight", "remote_inflight",
     "Unacked batches in flight on the worker connection (credits "
     "in use)"),
)
_SHARD_QUANTILES = (
    ("0.5", "remote_rtt_p50_seconds"),
    ("0.95", "remote_rtt_p95_seconds"),
)
_PLAN_GAUGES = (
    ("sase_plan_stack_instances_high_water", "stack_high_water",
     "Peak active stack instances"),
    ("sase_plan_partitions_high_water", "partitions_high_water",
     "Peak live PAIS partitions"),
)
_CODEGEN_GAUGES = (
    ("sase_query_scan_compiled", "compiled",
     "1 when the query's scan runs generated code, 0 on the "
     "interpreter fallback"),
    ("sase_query_scan_construct_generated", "construct",
     "1 when the scan's construction walk is specialized (unrolled), "
     "0 when it falls back to the interpreted walk"),
    ("sase_query_scan_batch_generated", "batch",
     "1 when the scan has a generated batch-loop feed body"),
)
_TENANT_GAUGES = (
    ("sase_tenant_registered_queries", "registered_queries",
     "Queries the tenant currently holds"),
    ("sase_tenant_queued_registrations", "queued_registrations",
     "The tenant's registrations waiting in the admission queue"),
    ("sase_tenant_admitted_registrations_total",
     "admitted_registrations_total",
     "Registrations admitted for the tenant"),
    ("sase_tenant_rejected_registrations_total",
     "rejected_registrations_total",
     "Registrations rejected for the tenant"),
    ("sase_tenant_results_total", "results_total",
     "Results produced for the tenant"),
    ("sase_tenant_results_delivered_total", "results_delivered_total",
     "Results delivered to the tenant"),
    ("sase_tenant_results_shed_total", "results_shed_total",
     "Results shed from the tenant's overfull pending queue"),
    ("sase_tenant_pending_results", "pending_results",
     "The tenant's undelivered result backlog"),
    ("sase_tenant_events_submitted_total", "events_submitted_total",
     "Events the tenant pushed through the service"),
    ("sase_tenant_events_throttled_total", "events_throttled_total",
     "Tenant event submissions refused by the rate limiter"),
)
_PERSIST_GAUGES = (
    ("sase_wal_records", "wal_records",
     "Records appended to the write-ahead log"),
    ("sase_wal_segments", "wal_segments",
     "Live WAL segment files"),
    ("sase_wal_bytes", "wal_bytes",
     "Bytes across the live WAL segments"),
    ("sase_wal_fsyncs_total", "wal_fsyncs",
     "fsync calls issued for the WAL"),
    ("sase_out_records", "out_records",
     "Durable matches in the out log"),
    ("sase_checkpoints_total", "checkpoints_written",
     "Checkpoints written this run"),
    ("sase_checkpoint_last_wal_lsn", "last_checkpoint_lsn",
     "WAL position of the newest checkpoint"),
    ("sase_replayed_events_total", "replayed_events",
     "WAL events replayed during recovery"),
    ("sase_suppressed_matches_total", "suppressed_matches",
     "Already-durable matches suppressed during recovery"),
)


def collector_snapshot(collector: Any) -> dict:
    """JSON-serializable form of a :class:`MetricsCollector`."""
    queries = {}
    for name, metrics in collector.queries.items():
        queries[name] = {
            "events_in": metrics.events_in,
            "results_out": metrics.results_out,
            "busy_seconds": metrics.busy_seconds,
            "selectivity": metrics.selectivity,
            "last_result_at": metrics.last_result_at,
            "p50_feed_seconds": metrics.latency_percentile(0.50),
            "p95_feed_seconds": metrics.latency_percentile(0.95),
        }
    shards = {}
    for shard_id, metrics in collector.shards.items():
        entry = {field: getattr(metrics, field)
                 for _, field, _ in _SHARD_COUNTERS}
        for _, field, _ in _SHARD_GAUGES:
            entry[field] = getattr(metrics, field)
        entry["remote_rtt_p50_seconds"] = metrics.rtt_percentile(0.50)
        entry["remote_rtt_p95_seconds"] = metrics.rtt_percentile(0.95)
        shards[str(shard_id)] = entry
    snapshot: dict = {"queries": queries}
    if shards:
        snapshot["shards"] = shards
    return snapshot


def processor_snapshot(processor: Any) -> dict:
    """Collector snapshot plus per-query plan statistics."""
    snapshot = collector_snapshot(processor.metrics)
    plans = {}
    codegen = {}
    for registered in processor.queries():
        plans[registered.name] = registered.runtime.stats.to_dict()
        coverage = getattr(registered.runtime, "scan_coverage", None)
        if coverage is not None:
            codegen[registered.name] = dict(coverage)
    if plans:
        snapshot["plans"] = plans
    if codegen:
        snapshot["codegen"] = codegen
    return snapshot


def to_json(snapshot: dict, indent: int = 2) -> str:
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def _label_escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"') \
        .replace("\n", "\\n")


def _format_value(value: float) -> str:
    # repr keeps floats round-trippable; integers print without ".0".
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class _PrometheusWriter:
    def __init__(self) -> None:
        self.lines: list[str] = []
        self._typed: set[str] = set()

    def sample(self, metric: str, metric_type: str, help_text: str,
               labels: dict[str, str], value: float | None) -> None:
        if value is None:
            return
        if metric not in self._typed:
            self._typed.add(metric)
            self.lines.append(f"# HELP {metric} {help_text}")
            self.lines.append(f"# TYPE {metric} {metric_type}")
        rendered = ",".join(
            f'{key}="{_label_escape(label)}"'
            for key, label in sorted(labels.items()))
        label_part = f"{{{rendered}}}" if rendered else ""
        self.lines.append(
            f"{metric}{label_part} {_format_value(value)}")

    def text(self) -> str:
        return "\n".join(self.lines) + "\n" if self.lines else ""


def to_prometheus(snapshot: dict) -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    w = _PrometheusWriter()
    for name, entry in snapshot.get("queries", {}).items():
        labels = {"query": name}
        for metric, field, help_text in _QUERY_COUNTERS:
            w.sample(metric, "counter", help_text, labels, entry[field])
        for metric, field, help_text in _QUERY_GAUGES:
            w.sample(metric, "gauge", help_text, labels, entry[field])
        for quantile, field in _QUERY_QUANTILES:
            w.sample("sase_query_feed_latency_seconds", "summary",
                     "Per-feed latency reservoir quantiles",
                     {**labels, "quantile": quantile}, entry[field])
    for shard_id, entry in snapshot.get("shards", {}).items():
        labels = {"shard": shard_id}
        for metric, field, help_text in _SHARD_COUNTERS:
            w.sample(metric, "counter", help_text, labels, entry[field])
        for metric, field, help_text in _SHARD_GAUGES:
            w.sample(metric, "gauge", help_text, labels,
                     entry.get(field))
        for quantile, field in _SHARD_QUANTILES:
            w.sample("sase_shard_remote_rtt_seconds", "summary",
                     "Heartbeat round-trip reservoir quantiles",
                     {**labels, "quantile": quantile},
                     entry.get(field))
    for tenant, entry in snapshot.get("tenants", {}).items():
        labels = {"tenant": tenant}
        for metric, field, help_text in _TENANT_GAUGES:
            w.sample(metric, "gauge", help_text, labels,
                     entry.get(field))
    persistence = snapshot.get("persistence")
    if persistence:
        for metric, field, help_text in _PERSIST_GAUGES:
            w.sample(metric, "gauge", help_text, {},
                     persistence.get(field))
    for name, plan in snapshot.get("plans", {}).items():
        labels = {"query": name}
        for metric, field, help_text in _PLAN_GAUGES:
            w.sample(metric, "gauge", help_text, labels, plan[field])
        for operator, stats in plan.get("operators", {}).items():
            op_labels = {**labels, "operator": operator}
            w.sample("sase_operator_consumed_total", "counter",
                     "Items the operator consumed", op_labels,
                     stats["consumed"])
            w.sample("sase_operator_produced_total", "counter",
                     "Items the operator produced", op_labels,
                     stats["produced"])
    for name, coverage in snapshot.get("codegen", {}).items():
        labels = {"query": name}
        for metric, field, help_text in _CODEGEN_GAUGES:
            w.sample(metric, "gauge", help_text, labels,
                     float(bool(coverage.get(field))))
    return w.text()


def parse_prometheus(text: str) -> dict[tuple, float]:
    """Parse Prometheus text exposition back into
    ``{(metric, ((label, value), ...)): sample}`` — the inverse of
    :func:`to_prometheus` for round-trip tests and scrape checks."""
    samples: dict[tuple, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        metric, _, label_part = name_part.partition("{")
        labels = []
        label_part = label_part.rstrip("}")
        while label_part:
            key, _, rest = label_part.partition('="')
            value = []
            index = 0
            while index < len(rest):
                char = rest[index]
                if char == "\\" and index + 1 < len(rest):
                    escaped = rest[index + 1]
                    value.append({"n": "\n"}.get(escaped, escaped))
                    index += 2
                    continue
                if char == '"':
                    break
                value.append(char)
                index += 1
            labels.append((key, "".join(value)))
            label_part = rest[index + 1:].lstrip(",")
        samples[(metric, tuple(sorted(labels)))] = float(value_part)
    return samples


class MetricsExporter:
    """Periodically serialize a processor's metrics to a file.

    The format follows the target path (``.prom``/``.txt`` →
    Prometheus text, anything else → JSON) unless given explicitly.
    ``every_events`` sets a flush cadence for :meth:`tick`; with the
    default of 0 the exporter only flushes when asked.
    """

    def __init__(self, processor: Any, path: str,
                 fmt: str | None = None, every_events: int = 0,
                 persistence: Any = None, service: Any = None):
        if fmt is None:
            fmt = "prometheus" \
                if path.endswith((".prom", ".txt")) else "json"
        if fmt not in ("json", "prometheus"):
            raise ValueError(f"unknown metrics format {fmt!r}")
        self._processor = processor
        self._persistence = persistence
        self._service = service
        self.path = path
        self.fmt = fmt
        self.every_events = every_events
        self._since_flush = 0
        self.flush_count = 0

    def snapshot(self) -> dict:
        snapshot = processor_snapshot(self._processor)
        if self._persistence is not None:
            snapshot["persistence"] = self._persistence.gauges()
        if self._service is not None:
            snapshot["tenants"] = self._service.tenant_gauges()
        return snapshot

    def render(self) -> str:
        snapshot = self.snapshot()
        if self.fmt == "prometheus":
            return to_prometheus(snapshot)
        return to_json(snapshot)

    def tick(self, events: int = 1) -> bool:
        """Count processed events; flush when the cadence is reached.
        Returns True when a flush happened."""
        self._since_flush += events
        if self.every_events and self._since_flush >= self.every_events:
            self.flush()
            return True
        return False

    def flush(self) -> str:
        """Write the current snapshot to the target path."""
        rendered = self.render()
        with open(self.path, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        self._since_flush = 0
        self.flush_count += 1
        return rendered

    def write_to(self, handle: IO[str]) -> None:
        handle.write(self.render())
