"""Opt-in profiling hooks: per-component scan counters and a slow-feed log.

Two complementary tools for finding *why* a query is slow:

* :class:`ScanProfile` counts, per sequence component, how many events the
  ``SequenceScanConstruct`` operator admitted onto each component's stack,
  plus how often result construction ran and how many matches it emitted.
  A component admitting far more events than the next one consumes is
  where pushdown filters should go.  The interpreted scan checks a single
  ``profile is not None`` guard per hook; the code-generated scan emits
  the hooks into the generated source only when profiling was requested,
  so the disabled compiled path is byte-identical to the unprofiled one.

* :class:`SlowFeedLog` captures the offending event and query whenever a
  single ``feed`` call exceeds a wall-clock latency threshold, keeping a
  bounded ring of the worst moments for post-hoc inspection.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Sequence


class ScanProfile:
    """Per-component admit/construct counters for one scan operator."""

    __slots__ = ("variables", "admits", "construct_calls",
                 "matches_emitted")

    def __init__(self, variables: Sequence[str]):
        self.variables = list(variables)
        self.admits = [0] * len(self.variables)
        self.construct_calls = 0
        self.matches_emitted = 0

    def to_dict(self) -> dict:
        return {
            "admits": dict(zip(self.variables, self.admits)),
            "construct_calls": self.construct_calls,
            "matches_emitted": self.matches_emitted,
        }

    def report_lines(self) -> list[str]:
        lines = [f"admit {variable}: {count}"
                 for variable, count in zip(self.variables, self.admits)]
        lines.append(f"construct calls: {self.construct_calls}, "
                     f"matches emitted: {self.matches_emitted}")
        return lines


@dataclass
class SlowFeed:
    """One feed call that blew the latency budget."""

    query: str
    event_type: str
    timestamp: float
    seq: int
    duration: float          # wall seconds
    results: int

    def describe(self) -> str:
        return (f"{self.query}: {self.duration * 1e3:.3f} ms on "
                f"{self.event_type} t={self.timestamp:g} "
                f"seq={self.seq} ({self.results} results)")


class SlowFeedLog:
    """Bounded log of feed calls slower than a wall-clock threshold."""

    def __init__(self, threshold_seconds: float, capacity: int = 256):
        self.threshold = threshold_seconds
        self._entries: deque[SlowFeed] = deque(maxlen=capacity)
        self.total_slow = 0

    def record(self, query: str, event: Any, duration: float,
               results: int) -> None:
        self.total_slow += 1
        self._entries.append(SlowFeed(
            query=query, event_type=event.type,
            timestamp=event.timestamp, seq=event.seq,
            duration=duration, results=results))

    @property
    def entries(self) -> list[SlowFeed]:
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def report_lines(self) -> list[str]:
        return [entry.describe() for entry in self._entries]
