"""Exception hierarchy for the SASE reproduction.

Every error raised by this package derives from :class:`SaseError` so that
callers can catch one base class at system boundaries.
"""

from __future__ import annotations


class SaseError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SchemaError(SaseError):
    """An event schema is malformed or an event violates its schema."""


class StreamError(SaseError):
    """An event stream violates its contract (e.g. out-of-order timestamps)."""


class LanguageError(SaseError):
    """Base class for SASE language front-end errors."""

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class LexerError(LanguageError):
    """The query text contains a character sequence that is not a token."""


class ParseError(LanguageError):
    """The token stream does not form a valid SASE query."""


class SemanticError(LanguageError):
    """The query parses but is not well formed (unknown types, unbound
    variables, predicates over incompatible attribute types, ...)."""


class PlanError(SaseError):
    """A query plan cannot be built for the requested configuration."""


class EvaluationError(SaseError):
    """A runtime expression (predicate or RETURN item) failed to evaluate."""


class FunctionError(SaseError):
    """A built-in ``_`` function was called incorrectly or failed."""


class DatabaseError(SaseError):
    """Base class for the embedded relational engine's errors."""


class SqlError(DatabaseError):
    """A SQL statement failed to lex, parse, or validate."""


class TableError(DatabaseError):
    """A table-level constraint was violated (missing table/column, type
    mismatch, duplicate table, ...)."""


class PersistenceError(SaseError):
    """The durability layer (WAL, checkpoints, recovery) hit an
    unrecoverable inconsistency or was misused."""


class ResilienceError(SaseError):
    """The resilience layer (chaos spec, shedding policy, supervisor)
    was misconfigured."""


class ServiceError(SaseError):
    """The multi-tenant query service rejected a request (quota,
    admission control, unknown tenant/query) or was misused."""


class ProtocolError(ServiceError):
    """A service wire-protocol message is malformed."""


class CleaningError(SaseError):
    """A cleaning-layer invariant was violated."""


class SimulationError(SaseError):
    """The RFID simulator was configured or driven incorrectly."""
