"""Deduplication layer.

"Removes duplicates, which can be caused either by a redundant setup, where
two readers monitor the same logical area, or when an item resides in
overlapping read ranges of two separate readers" (Section 3).

Duplicates are defined at the *logical* level: the same tag observed in the
same logical area within the same logical time unit is one observation,
whichever (and however many) physical readers produced it.  The first
reading wins; its reader id is kept for provenance.
"""

from __future__ import annotations

from typing import Iterable

from repro.cleaning.base import LogicalReading, StageStats
from repro.rfid.layout import StoreLayout


class Deduplication:
    """Stage 4 of the cleaning pipeline."""

    def __init__(self, layout: StoreLayout,
                 stats: StageStats | None = None):
        self._layout = layout
        self.stats = stats or StageStats("deduplication")
        # (tag, area) -> last logical timestamp that produced an output
        self._last_emitted: dict[tuple[int, int], float] = {}

    def process(self,
                readings: Iterable[LogicalReading]) -> list[LogicalReading]:
        output: list[LogicalReading] = []
        for reading in readings:
            self.stats.consumed += 1
            area = self._layout.area_of_reader(reading.reader_id)
            key = (reading.tag_id, area.area_id)
            if self._last_emitted.get(key) == reading.timestamp:
                self.stats.dropped += 1
                continue
            self._last_emitted[key] = reading.timestamp
            output.append(reading)
        self.stats.produced += len(output)
        return output

    def reset(self) -> None:
        self._last_emitted.clear()
