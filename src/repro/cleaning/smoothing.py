"""Temporal Smoothing layer: fill in missed reads.

"The system decides whether an object was present at time t based not only
on the reading at time t, but also on the readings of this object in a
window of size w before t.  Using this heuristic, a new reading may be
created" (Section 3).

Concretely: the stage consumes one scan tick at a time.  A (tag, reader)
pair that produced a reading within the last *w* seconds but not in the
current tick gets a *smoothed* reading created for it at the current scan
time — the standard sliding-window interpolation for lossy readers.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.cleaning.base import CleanReading, StageStats
from repro.errors import CleaningError


class TemporalSmoothing:
    """Stage 2 of the cleaning pipeline."""

    def __init__(self, window: float = 2.0,
                 stats: StageStats | None = None):
        if window < 0:
            raise CleaningError("smoothing window must be non-negative")
        self.window = window
        self.stats = stats or StageStats("temporal_smoothing")
        self._last_seen: dict[tuple[int, str], float] = {}

    def process(self, readings: Iterable[CleanReading],
                now: float) -> list[CleanReading]:
        """Process one scan tick's readings; *now* is the scan time."""
        output: list[CleanReading] = []
        seen_this_tick: set[tuple[int, str]] = set()
        for reading in readings:
            self.stats.consumed += 1
            key = (reading.tag_id, reading.reader_id)
            seen_this_tick.add(key)
            self._last_seen[key] = reading.time
            output.append(reading)

        expired: list[tuple[int, str]] = []
        for key, last_time in self._last_seen.items():
            if key in seen_this_tick:
                continue
            if now - last_time <= self.window:
                tag_id, reader_id = key
                output.append(CleanReading(tag_id, reader_id, now,
                                           smoothed=True))
                self.stats.created += 1
            else:
                expired.append(key)
        for key in expired:
            del self._last_seen[key]

        self.stats.produced += len(output)
        return output

    def reset(self) -> None:
        self._last_seen.clear()


class AdaptiveSmoothing:
    """SMURF-style adaptive smoothing (extension).

    The paper's cleaning layer builds on the pipelined cleaning framework
    of its reference [7]; that line of work (SMURF) chooses the smoothing
    window *per tag* from the observed read rate instead of a fixed ``w``:
    an unreliable tag gets a longer window, a reliably-read tag a shorter
    one, so gaps are bridged without over-smoothing departures.

    Per (tag, reader) we keep the last :attr:`history` scan outcomes
    (read / not read).  With read-rate estimate ``p̂``, the probability of
    ``k`` consecutive misses while present is ``(1-p̂)^k``; the window is
    the smallest ``k`` pushing that below :attr:`confidence`, clamped to
    ``[1, max_window_ticks]`` scan ticks.
    """

    def __init__(self, tick: float = 1.0, confidence: float = 0.05,
                 history: int = 10, max_window_ticks: int = 8,
                 stats: StageStats | None = None):
        if tick <= 0:
            raise CleaningError("scan tick must be positive")
        if not 0.0 < confidence < 1.0:
            raise CleaningError("confidence must be in (0, 1)")
        if history < 1 or max_window_ticks < 1:
            raise CleaningError("history and max window must be >= 1")
        self.tick = tick
        self.confidence = confidence
        self.history = history
        self.max_window_ticks = max_window_ticks
        self.stats = stats or StageStats("adaptive_smoothing")
        # per (tag, reader): (recent outcome bits, last seen time)
        self._outcomes: dict[tuple[int, str], list[bool]] = {}
        self._last_seen: dict[tuple[int, str], float] = {}

    def window_ticks(self, key: tuple[int, str]) -> int:
        """The current per-key window, in scan ticks."""
        outcomes = self._outcomes.get(key)
        if not outcomes:
            return 1
        read_rate = sum(outcomes) / len(outcomes)
        if read_rate >= 1.0:
            return 1
        if read_rate <= 0.0:
            return self.max_window_ticks
        # smallest k with (1 - p)^k <= confidence
        k = math.ceil(math.log(self.confidence)
                      / math.log(1.0 - read_rate))
        return max(1, min(self.max_window_ticks, k))

    def process(self, readings: Iterable[CleanReading],
                now: float) -> list[CleanReading]:
        """Process one scan tick; *now* is the scan time."""
        output: list[CleanReading] = []
        seen_this_tick: set[tuple[int, str]] = set()
        for reading in readings:
            self.stats.consumed += 1
            key = (reading.tag_id, reading.reader_id)
            if key not in seen_this_tick:
                self._record(key, True)
            seen_this_tick.add(key)
            self._last_seen[key] = reading.time
            output.append(reading)

        expired: list[tuple[int, str]] = []
        for key, last_time in self._last_seen.items():
            if key in seen_this_tick:
                continue
            self._record(key, False)
            missed_ticks = (now - last_time) / self.tick
            if missed_ticks <= self.window_ticks(key) + 1e-9:
                tag_id, reader_id = key
                output.append(CleanReading(tag_id, reader_id, now,
                                           smoothed=True))
                self.stats.created += 1
            elif missed_ticks > self.max_window_ticks:
                expired.append(key)
        for key in expired:
            del self._last_seen[key]
            self._outcomes.pop(key, None)

        self.stats.produced += len(output)
        return output

    def _record(self, key: tuple[int, str], read: bool) -> None:
        outcomes = self._outcomes.setdefault(key, [])
        outcomes.append(read)
        if len(outcomes) > self.history:
            del outcomes[:len(outcomes) - self.history]

    def reset(self) -> None:
        self._outcomes.clear()
        self._last_seen.clear()
