"""Shared types for the cleaning stages."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CleanReading:
    """A validated reading: decoded tag id, reader, and wall-clock time."""

    tag_id: int
    reader_id: str
    time: float
    smoothed: bool = False  # created by temporal smoothing, not observed


@dataclass(frozen=True)
class LogicalReading:
    """A clean reading with its logical timestamp appended."""

    tag_id: int
    reader_id: str
    time: float
    timestamp: float
    smoothed: bool = False


@dataclass
class StageStats:
    """Per-stage flow counters the UI and benchmarks report."""

    name: str
    consumed: int = 0
    produced: int = 0
    dropped: int = 0
    created: int = 0

    def __repr__(self) -> str:
        return (f"StageStats({self.name}: in={self.consumed} "
                f"out={self.produced} dropped={self.dropped} "
                f"created={self.created})")


@dataclass
class PipelineStats:
    stages: list[StageStats] = field(default_factory=list)

    def stage(self, name: str) -> StageStats:
        for stats in self.stages:
            if stats.name == name:
                return stats
        stats = StageStats(name)
        self.stages.append(stats)
        return stats

    def snapshot(self) -> dict[str, tuple[int, int, int, int]]:
        return {stats.name: (stats.consumed, stats.produced,
                             stats.dropped, stats.created)
                for stats in self.stages}
