"""The Cleaning and Association Layer (Section 3 of the paper).

Five stages turn raw, noisy RFID readings into typed, timestamped events:

1. :class:`~repro.cleaning.anomaly.AnomalyFilter` — drops spurious
   readings and truncated ids;
2. :class:`~repro.cleaning.smoothing.TemporalSmoothing` — fills missed
   reads from a per-tag window of recent observations;
3. :class:`~repro.cleaning.timeconv.TimeConversion` — appends a logical
   timestamp based on a configurable time unit;
4. :class:`~repro.cleaning.dedup.Deduplication` — removes duplicates from
   redundant reader setups and overlapping read ranges;
5. :class:`~repro.cleaning.eventgen.EventGeneration` — produces schema
   conformant events, enriched with ONS metadata.

:class:`~repro.cleaning.pipeline.CleaningPipeline` composes them and keeps
per-stage statistics for the UI and the architecture benchmark.
"""

from repro.cleaning.anomaly import AnomalyFilter
from repro.cleaning.base import CleanReading, LogicalReading, StageStats
from repro.cleaning.dedup import Deduplication
from repro.cleaning.eventgen import EventGeneration
from repro.cleaning.pipeline import CleaningConfig, CleaningPipeline
from repro.cleaning.smoothing import AdaptiveSmoothing, TemporalSmoothing
from repro.cleaning.timeconv import TimeConversion

__all__ = [
    "AdaptiveSmoothing",
    "AnomalyFilter",
    "CleanReading",
    "CleaningConfig",
    "CleaningPipeline",
    "Deduplication",
    "EventGeneration",
    "LogicalReading",
    "StageStats",
    "TemporalSmoothing",
    "TimeConversion",
]
