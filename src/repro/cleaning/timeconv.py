"""Time Conversion layer: append logical timestamps.

"A timestamp is appended to each reading based on a logical time unit that
is set as a system configuration parameter" (Section 3).  Wall-clock times
are mapped onto a logical axis: ``timestamp = floor((time - origin) /
unit)`` logical units, expressed back in seconds so the WITHIN windows of
queries (which speak seconds/minutes/hours) line up.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.cleaning.base import CleanReading, LogicalReading, StageStats
from repro.errors import CleaningError


class TimeConversion:
    """Stage 3 of the cleaning pipeline."""

    def __init__(self, unit: float = 1.0, origin: float = 0.0,
                 stats: StageStats | None = None):
        if unit <= 0:
            raise CleaningError("logical time unit must be positive")
        self.unit = unit
        self.origin = origin
        self.stats = stats or StageStats("time_conversion")

    def logical_timestamp(self, time: float) -> float:
        """The logical timestamp (in seconds, quantised to the unit)."""
        return math.floor((time - self.origin) / self.unit) * self.unit

    def process(self,
                readings: Iterable[CleanReading]) -> list[LogicalReading]:
        output = []
        for reading in readings:
            self.stats.consumed += 1
            output.append(LogicalReading(
                tag_id=reading.tag_id,
                reader_id=reading.reader_id,
                time=reading.time,
                timestamp=self.logical_timestamp(reading.time),
                smoothed=reading.smoothed))
        self.stats.produced += len(output)
        return output
