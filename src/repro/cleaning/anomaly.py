"""Anomaly Filtering layer: drop spurious readings and truncated ids.

Two checks, per the paper: structural validity of the id (length and
checksum — truncated ids fail both) and, when a known-tag set is available
(the ONS knows every registered item), membership — a well-formed EPC for a
tag that does not exist is a *ghost read* and is dropped as spurious.
"""

from __future__ import annotations

from typing import Iterable

from repro.cleaning.base import CleanReading, StageStats
from repro.rfid.simulator import RawReading
from repro.rfid.tags import decode_epc, is_valid_epc


class AnomalyFilter:
    """Stage 1 of the cleaning pipeline."""

    def __init__(self, known_tags: set[int] | None = None,
                 stats: StageStats | None = None):
        self._known_tags = known_tags
        self.stats = stats or StageStats("anomaly_filter")

    def process(self, readings: Iterable[RawReading]) -> list[CleanReading]:
        """Validate one scan's readings; invalid ones are dropped."""
        output: list[CleanReading] = []
        for reading in readings:
            self.stats.consumed += 1
            if not is_valid_epc(reading.epc):
                self.stats.dropped += 1
                continue
            tag_id = decode_epc(reading.epc)
            if self._known_tags is not None and \
                    tag_id not in self._known_tags:
                self.stats.dropped += 1
                continue
            output.append(CleanReading(tag_id, reading.reader_id,
                                       reading.time))
        self.stats.produced += len(output)
        return output
