"""Event Generation layer: schema-conformant, ONS-enriched events.

"Generates events according to a pre-defined schema.  An important step in
event generation is to obtain attributes defined in the schema ... In our
system, we simulate an ONS with a local database storing product metadata"
(Section 3).  The reader's area kind selects the event type (shelf readings
become SHELF_READING events, and so on); ONS metadata fills the product
attributes.
"""

from __future__ import annotations

from typing import Iterable

from repro.cleaning.base import LogicalReading, StageStats
from repro.events.event import Event
from repro.ons.service import ObjectNameService
from repro.rfid.layout import StoreLayout
from repro.schemas import EVENT_TYPE_FOR_KIND


class EventGeneration:
    """Stage 5 of the cleaning pipeline."""

    def __init__(self, layout: StoreLayout, ons: ObjectNameService,
                 stats: StageStats | None = None):
        self._layout = layout
        self._ons = ons
        self.stats = stats or StageStats("event_generation")

    def process(self, readings: Iterable[LogicalReading]) -> list[Event]:
        events: list[Event] = []
        for reading in readings:
            self.stats.consumed += 1
            area = self._layout.area_of_reader(reading.reader_id)
            record = self._ons.lookup(reading.tag_id)
            if record is None:
                # Unknown to the ONS: cannot satisfy the schema.  (The
                # anomaly filter normally removed these already; this
                # covers pipelines configured without a known-tag set.)
                self.stats.dropped += 1
                continue
            attributes = {
                "TagId": reading.tag_id,
                "AreaId": area.area_id,
                "ReaderId": reading.reader_id,
            }
            attributes.update(record.as_attributes())
            events.append(Event(EVENT_TYPE_FOR_KIND[area.kind],
                                reading.timestamp, attributes))
        self.stats.produced += len(events)
        return events
