"""The composed Cleaning and Association pipeline.

Consumes per-scan-tick batches of raw readings (exactly what
:meth:`repro.rfid.simulator.RfidSimulator.run_script` yields) and produces
time-ordered events ready for the complex event processor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.cleaning.anomaly import AnomalyFilter
from repro.cleaning.base import PipelineStats
from repro.cleaning.dedup import Deduplication
from repro.cleaning.eventgen import EventGeneration
from repro.cleaning.smoothing import AdaptiveSmoothing, TemporalSmoothing
from repro.cleaning.timeconv import TimeConversion
from repro.errors import CleaningError
from repro.events.event import Event
from repro.resilience.quarantine import MAX_TIMESTAMP, reading_payload, \
    validate_reading
from repro.ons.service import ObjectNameService
from repro.rfid.layout import StoreLayout
from repro.rfid.simulator import RawReading


@dataclass(frozen=True)
class CleaningConfig:
    """Tunables for the five stages.

    ``smoothing`` selects the temporal-smoothing strategy: ``"fixed"``
    (the paper's window-``w`` heuristic), ``"adaptive"`` (SMURF-style
    per-tag windows — see :class:`~repro.cleaning.smoothing
    .AdaptiveSmoothing`), or ``"none"``.
    """

    smoothing: str = "fixed"
    smoothing_window: float = 2.0
    scan_tick: float = 1.0           # adaptive mode: scan interval
    smoothing_confidence: float = 0.05
    max_smoothing_ticks: int = 8
    logical_time_unit: float = 1.0
    time_origin: float = 0.0
    filter_unknown_tags: bool = True


class CleaningPipeline:
    """Stages 1-5 wired together, with per-stage statistics.

    With a ``quarantine`` (a :class:`~repro.resilience.DeadLetterQueue`)
    attached, the pipeline hardens its boundary: readings violating the
    schema the stages rely on are diverted to the dead-letter queue
    before entering, and a stage blowing up mid-tick quarantines the
    whole tick instead of raising through ``feed()``."""

    def __init__(self, layout: StoreLayout, ons: ObjectNameService,
                 config: CleaningConfig | None = None, quarantine=None):
        self.config = config or CleaningConfig()
        self.quarantine = quarantine
        self.stats = PipelineStats()
        known = ons.known_tags() if self.config.filter_unknown_tags else None
        self.anomaly = AnomalyFilter(
            known, stats=self.stats.stage("anomaly_filter"))
        self.smoothing: TemporalSmoothing | AdaptiveSmoothing
        if self.config.smoothing == "fixed":
            self.smoothing = TemporalSmoothing(
                self.config.smoothing_window,
                stats=self.stats.stage("temporal_smoothing"))
        elif self.config.smoothing == "adaptive":
            self.smoothing = AdaptiveSmoothing(
                tick=self.config.scan_tick,
                confidence=self.config.smoothing_confidence,
                max_window_ticks=self.config.max_smoothing_ticks,
                stats=self.stats.stage("temporal_smoothing"))
        elif self.config.smoothing == "none":
            self.smoothing = TemporalSmoothing(
                0.0, stats=self.stats.stage("temporal_smoothing"))
        else:
            raise CleaningError(
                f"unknown smoothing strategy {self.config.smoothing!r}; "
                f"use 'fixed', 'adaptive', or 'none'")
        self.timeconv = TimeConversion(
            self.config.logical_time_unit, self.config.time_origin,
            stats=self.stats.stage("time_conversion"))
        self.dedup = Deduplication(
            layout, stats=self.stats.stage("deduplication"))
        self.eventgen = EventGeneration(
            layout, ons, stats=self.stats.stage("event_generation"))

    def process_tick(self, readings: Iterable[RawReading],
                     now: float) -> list[Event]:
        """Run one scan tick through all five stages."""
        quarantine = self.quarantine
        if quarantine is None:
            return self._run_stages(readings, now)
        admitted = self._validate(readings, now, quarantine)
        try:
            return self._run_stages(admitted, now)
        except Exception as exc:
            # A stage failed mid-tick: quarantine the whole tick (the
            # explicit, inspectable form of degradation) and keep the
            # stream alive.  Stage state may have partially advanced;
            # later ticks proceed best-effort.
            for reading in admitted:
                quarantine.append("cleaning", reading_payload(reading),
                                  exc, ingest_time=now)
            return []

    def _run_stages(self, readings: Iterable[RawReading],
                    now: float) -> list[Event]:
        clean = self.anomaly.process(readings)
        smoothed = self.smoothing.process(clean, now)
        logical = self.timeconv.process(smoothed)
        deduped = self.dedup.process(logical)
        events = self.eventgen.process(deduped)
        # deterministic within-tick order: by timestamp, tag, area
        events.sort(key=lambda event: (event.timestamp, event["TagId"],
                                       event["AreaId"]))
        return events

    def _validate(self, readings: Iterable[RawReading], now: float,
                  quarantine) -> list[RawReading]:
        admitted: list[RawReading] = []
        append = admitted.append
        max_timestamp = MAX_TIMESTAMP
        for reading in readings:
            # Inlined happy path of validate_reading: this loop runs on
            # every raw reading whenever a quarantine is attached, and
            # E20a holds the armed-but-idle overhead to <= 5%.
            try:
                epc = reading.epc
                reader_id = reading.reader_id
                timestamp = reading.time
                if (type(epc) is str and epc
                        and type(reader_id) is str and reader_id
                        and type(timestamp) in (float, int)
                        and 0.0 <= timestamp < max_timestamp):
                    append(reading)
                    continue
            except AttributeError:
                pass
            problem = validate_reading(reading)
            if problem is None:
                append(reading)
            else:
                quarantine.append("ingest_validation",
                                  reading_payload(reading), problem,
                                  ingest_time=now)
        return admitted

    def run(self, ticks: Iterable[tuple[float, list[RawReading]]]) \
            -> Iterator[Event]:
        """Clean a whole simulation run, yielding events in time order."""
        for now, readings in ticks:
            yield from self.process_tick(readings, now)

    def reset(self) -> None:
        self.smoothing.reset()
        self.dedup.reset()
