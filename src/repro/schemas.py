"""Standard event schemas for the retail/warehouse scenario.

The Event Generation layer "generates events according to a pre-defined
schema" (Section 3); these are the pre-defined schemas the demonstration
uses.  Reading events share one attribute set — the raw reading's TagId and
AreaId plus the ONS metadata — and differ only in type, which the reader's
area kind selects (shelf / counter / exit / loading / unloading / backroom).
"""

from __future__ import annotations

from repro.events.model import AttributeSpec, AttributeType, EventSchema, \
    SchemaRegistry
from repro.rfid.layout import AreaKind

SHELF_READING = "SHELF_READING"
COUNTER_READING = "COUNTER_READING"
EXIT_READING = "EXIT_READING"
LOADING_READING = "LOADING_READING"
UNLOADING_READING = "UNLOADING_READING"
BACKROOM_READING = "BACKROOM_READING"

EVENT_TYPE_FOR_KIND: dict[AreaKind, str] = {
    AreaKind.SHELF: SHELF_READING,
    AreaKind.COUNTER: COUNTER_READING,
    AreaKind.EXIT: EXIT_READING,
    AreaKind.LOADING: LOADING_READING,
    AreaKind.UNLOADING: UNLOADING_READING,
    AreaKind.BACKROOM: BACKROOM_READING,
}

READING_ATTRIBUTES: tuple[tuple[str, AttributeType], ...] = (
    ("TagId", AttributeType.INT),
    ("AreaId", AttributeType.INT),
    ("ReaderId", AttributeType.STRING),
    ("ProductName", AttributeType.STRING),
    ("Category", AttributeType.STRING),
    ("Price", AttributeType.FLOAT),
    ("ExpirationDate", AttributeType.STRING),
    ("Saleable", AttributeType.BOOL),
    ("HomeAreaId", AttributeType.INT),
)


def reading_schema(event_type: str) -> EventSchema:
    """The common reading-event schema under a given type name."""
    return EventSchema(event_type, [AttributeSpec(name, attr_type)
                                    for name, attr_type
                                    in READING_ATTRIBUTES])


def retail_registry() -> SchemaRegistry:
    """Schemas for every reading-event type the demonstration produces."""
    registry = SchemaRegistry()
    for event_type in EVENT_TYPE_FOR_KIND.values():
        registry.register(reading_schema(event_type))
    return registry
