"""Discrete-time RFID simulator.

"RFID readers scan their reading range in regular intervals and return a
reading for each detected tag.  Each raw RFID reading consists of the TagId
and ReaderId" (Section 3).  The simulator holds the world state (which tag
is in which area), applies a movement script, and at every scan tick lets
each reader report the tags in its area through the noise model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import SimulationError
from repro.rfid.layout import StoreLayout
from repro.rfid.noise import NoiseModel
from repro.rfid.tags import encode_epc


@dataclass(frozen=True)
class RawReading:
    """One raw reading as it leaves the physical device layer."""

    epc: str
    reader_id: str
    time: float


@dataclass(order=True)
class _Move:
    time: float
    order: int
    tag_id: int = field(compare=False)
    area_id: int | None = field(compare=False)  # None = leaves all areas


class MovementScript:
    """A time-ordered script of tag movements.

    ``move(t, tag, area)`` schedules the tag to be in *area* from time *t*
    on; ``remove(t, tag)`` takes it out of every read range (left the
    store, inside a shielded container, ...).
    """

    def __init__(self) -> None:
        self._moves: list[_Move] = []
        self._counter = 0

    def move(self, time: float, tag_id: int, area_id: int) -> None:
        self._moves.append(_Move(time, self._counter, tag_id, area_id))
        self._counter += 1

    def remove(self, time: float, tag_id: int) -> None:
        self._moves.append(_Move(time, self._counter, tag_id, None))
        self._counter += 1

    def __len__(self) -> int:
        return len(self._moves)

    @property
    def end_time(self) -> float:
        return max((move.time for move in self._moves), default=0.0)

    def sorted_moves(self) -> list[_Move]:
        return sorted(self._moves)


class RfidSimulator:
    """World state + scan loop."""

    def __init__(self, layout: StoreLayout,
                 noise: NoiseModel | None = None,
                 scan_interval: float = 1.0, seed: int = 0):
        if scan_interval <= 0:
            raise SimulationError("scan interval must be positive")
        self.layout = layout
        self.noise = noise or NoiseModel.perfect()
        self.scan_interval = scan_interval
        self._rng = random.Random(seed)
        self._positions: dict[int, int] = {}  # tag -> area
        self.readings_emitted = 0

    # -- world state -------------------------------------------------------

    def place(self, tag_id: int, area_id: int) -> None:
        if area_id not in self.layout.areas:
            raise SimulationError(f"unknown area {area_id}")
        self._positions[tag_id] = area_id

    def remove(self, tag_id: int) -> None:
        self._positions.pop(tag_id, None)

    def position_of(self, tag_id: int) -> int | None:
        return self._positions.get(tag_id)

    def tags_in_area(self, area_id: int) -> list[int]:
        return sorted(tag for tag, area in self._positions.items()
                      if area == area_id)

    # -- scanning -----------------------------------------------------------

    def scan(self, time: float) -> list[RawReading]:
        """One scan of every reader, with noise."""
        readings: list[RawReading] = []
        for reader_id, reader in sorted(self.layout.readers.items()):
            for tag_id in self.tags_in_area(reader.area_id):
                if self.noise.drops_reading(self._rng):
                    continue
                epc = encode_epc(tag_id)
                if self.noise.truncates_id(self._rng):
                    epc = self.noise.corrupt_epc(epc, self._rng)
                readings.append(RawReading(epc, reader_id, time))
                if self.noise.duplicates_reading(self._rng):
                    readings.append(RawReading(epc, reader_id, time))
            if self.noise.emits_ghost(self._rng):
                ghost = encode_epc(self._rng.randint(9_000_000, 9_999_999))
                readings.append(RawReading(ghost, reader_id, time))
        self.readings_emitted += len(readings)
        return readings

    def run_script(self, script: MovementScript,
                   until: float | None = None,
                   start: float = 0.0) -> Iterator[tuple[float,
                                                         list[RawReading]]]:
        """Apply *script* while scanning every ``scan_interval``.

        Yields ``(scan_time, readings)`` per tick — the per-tick batches the
        cleaning pipeline consumes.  Moves scheduled at or before a scan
        time are applied before that scan.
        """
        moves = script.sorted_moves()
        end = until if until is not None else script.end_time
        next_move = 0
        time = start
        while time <= end + 1e-9:
            while next_move < len(moves) and \
                    moves[next_move].time <= time + 1e-9:
                move = moves[next_move]
                if move.area_id is None:
                    self.remove(move.tag_id)
                else:
                    self.place(move.tag_id, move.area_id)
                next_move += 1
            yield time, self.scan(time)
            time += self.scan_interval
