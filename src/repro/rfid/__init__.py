"""The physical device layer, simulated.

The paper's demo uses a ThingMagic Mercury 4 reader with multiple antennas
and Alien EPC tags; offline we simulate the same layer (see DESIGN.md):
tags with checksummed EPC identifiers, readers bound to store areas, and a
noise model reproducing the reader idiosyncrasies the Cleaning and
Association layer exists to fix — missed reads, ghost reads, duplicate
reads, and truncated ids.
"""

from repro.rfid.layout import Area, AreaKind, Reader, StoreLayout, \
    default_retail_layout
from repro.rfid.noise import NoiseModel
from repro.rfid.simulator import MovementScript, RawReading, RfidSimulator
from repro.rfid.tags import decode_epc, encode_epc, is_valid_epc

__all__ = [
    "Area",
    "AreaKind",
    "MovementScript",
    "NoiseModel",
    "RawReading",
    "Reader",
    "RfidSimulator",
    "StoreLayout",
    "decode_epc",
    "default_retail_layout",
    "encode_epc",
    "is_valid_epc",
]
