"""Store layout: logical areas and the readers that monitor them.

The demonstration setup (Figure 2) has four readers, "with one reader in
each of the following locations: the store exit, two shelves, and check-out
counter.  Each reader occupies only one logical area."
:func:`default_retail_layout` builds exactly that; layouts may also attach
several readers to one area (a *redundant setup*, which is one of the two
duplicate sources the Deduplication layer handles).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import SimulationError


class AreaKind(enum.Enum):
    SHELF = "shelf"
    COUNTER = "counter"
    EXIT = "exit"
    LOADING = "loading"
    UNLOADING = "unloading"
    BACKROOM = "backroom"


@dataclass(frozen=True)
class Area:
    area_id: int
    kind: AreaKind
    description: str


@dataclass(frozen=True)
class Reader:
    reader_id: str
    area_id: int


@dataclass
class StoreLayout:
    """Areas plus readers; the association half of cleaning needs both."""

    areas: dict[int, Area] = field(default_factory=dict)
    readers: dict[str, Reader] = field(default_factory=dict)

    def add_area(self, area_id: int, kind: AreaKind,
                 description: str) -> Area:
        if area_id in self.areas:
            raise SimulationError(f"area {area_id} already exists")
        area = Area(area_id, kind, description)
        self.areas[area_id] = area
        return area

    def add_reader(self, reader_id: str, area_id: int) -> Reader:
        if reader_id in self.readers:
            raise SimulationError(f"reader {reader_id!r} already exists")
        if area_id not in self.areas:
            raise SimulationError(
                f"reader {reader_id!r} monitors unknown area {area_id}")
        reader = Reader(reader_id, area_id)
        self.readers[reader_id] = reader
        return reader

    def area_of_reader(self, reader_id: str) -> Area:
        try:
            reader = self.readers[reader_id]
        except KeyError:
            raise SimulationError(f"unknown reader {reader_id!r}") from None
        return self.areas[reader.area_id]

    def readers_in_area(self, area_id: int) -> list[Reader]:
        return [reader for reader in self.readers.values()
                if reader.area_id == area_id]

    def areas_of_kind(self, kind: AreaKind) -> list[Area]:
        return [area for area in self.areas.values() if area.kind is kind]

    def shelf_ids(self) -> list[int]:
        return sorted(area.area_id for area in
                      self.areas_of_kind(AreaKind.SHELF))


def default_retail_layout(redundant_exit_reader: bool = False) -> StoreLayout:
    """The Figure 2 demonstration setup: two shelves, a check-out counter,
    and the store exit, one reader each.  With *redundant_exit_reader* a
    second antenna watches the exit (exercising deduplication)."""
    layout = StoreLayout()
    layout.add_area(1, AreaKind.SHELF, "shelf A (household)")
    layout.add_area(2, AreaKind.SHELF, "shelf B (electronics)")
    layout.add_area(3, AreaKind.COUNTER, "check-out counter")
    layout.add_area(4, AreaKind.EXIT, "the leftmost door on the south side")
    layout.add_reader("R1", 1)
    layout.add_reader("R2", 2)
    layout.add_reader("R3", 3)
    layout.add_reader("R4", 4)
    if redundant_exit_reader:
        layout.add_reader("R4b", 4)
    return layout


def warehouse_layout() -> StoreLayout:
    """A warehouse-side layout for the track-and-trace pre-population:
    loading and unloading zones plus a backroom."""
    layout = StoreLayout()
    layout.add_area(10, AreaKind.LOADING, "loading dock")
    layout.add_area(11, AreaKind.UNLOADING, "unloading dock")
    layout.add_area(12, AreaKind.BACKROOM, "backroom storage")
    layout.add_reader("W1", 10)
    layout.add_reader("W2", 11)
    layout.add_reader("W3", 12)
    return layout
