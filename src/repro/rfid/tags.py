"""EPC tag identifiers with a checksum.

Raw readings carry EPC strings, not integer tag ids: decoding and
validating them is the Anomaly Filtering layer's job ("removes spurious
readings and readings that contain truncated ids").  The encoding is a
fixed-width decimal serial plus a two-digit checksum, so truncation and
corruption are detectable.
"""

from __future__ import annotations

EPC_PREFIX = "EPC"
_SERIAL_WIDTH = 10
_CHECK_WIDTH = 2
EPC_LENGTH = len(EPC_PREFIX) + _SERIAL_WIDTH + _CHECK_WIDTH


def _checksum(serial: str) -> int:
    """A tiny positional checksum (detects truncation and digit noise)."""
    total = 0
    for position, digit in enumerate(serial, start=1):
        total += position * int(digit)
    return total % 97


def encode_epc(tag_id: int) -> str:
    """Encode an integer tag id as an EPC string."""
    if tag_id < 0 or tag_id >= 10 ** _SERIAL_WIDTH:
        raise ValueError(f"tag id {tag_id} out of EPC serial range")
    serial = f"{tag_id:0{_SERIAL_WIDTH}d}"
    return f"{EPC_PREFIX}{serial}{_checksum(serial):0{_CHECK_WIDTH}d}"


def is_valid_epc(epc: str) -> bool:
    """True when *epc* is well-formed and its checksum verifies."""
    if len(epc) != EPC_LENGTH or not epc.startswith(EPC_PREFIX):
        return False
    serial = epc[len(EPC_PREFIX):len(EPC_PREFIX) + _SERIAL_WIDTH]
    check = epc[len(EPC_PREFIX) + _SERIAL_WIDTH:]
    if not (serial.isdigit() and check.isdigit()):
        return False
    return _checksum(serial) == int(check)


def decode_epc(epc: str) -> int:
    """Decode a validated EPC back to its tag id."""
    if not is_valid_epc(epc):
        raise ValueError(f"invalid EPC {epc!r}")
    return int(epc[len(EPC_PREFIX):len(EPC_PREFIX) + _SERIAL_WIDTH])
