"""Reader noise model.

"RFID readings are known to be inaccurate and lossy" (Section 3).  The
model reproduces the four idiosyncrasies the cleaning layers target:

* **missed reads** — a present tag produces no reading this scan;
* **duplicate reads** — one scan reports the same tag twice;
* **truncated ids** — the EPC arrives cut short (anomaly filtering drops
  these by checksum/length);
* **ghost reads** — a reading for a tag that is not present at all.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class NoiseModel:
    """Per-scan noise probabilities.  All default to a mildly noisy reader;
    ``NoiseModel.perfect()`` disables everything."""

    miss_rate: float = 0.05
    duplicate_rate: float = 0.05
    truncate_rate: float = 0.01
    ghost_rate: float = 0.005

    def __post_init__(self) -> None:
        for name in ("miss_rate", "duplicate_rate", "truncate_rate",
                     "ghost_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, "
                                 f"got {value}")

    @classmethod
    def perfect(cls) -> "NoiseModel":
        return cls(miss_rate=0.0, duplicate_rate=0.0, truncate_rate=0.0,
                   ghost_rate=0.0)

    @classmethod
    def harsh(cls) -> "NoiseModel":
        """A deliberately bad reader, for stress-testing the cleaning
        pipeline."""
        return cls(miss_rate=0.3, duplicate_rate=0.2, truncate_rate=0.05,
                   ghost_rate=0.02)

    # -- sampling -----------------------------------------------------------

    def drops_reading(self, rng: random.Random) -> bool:
        return rng.random() < self.miss_rate

    def duplicates_reading(self, rng: random.Random) -> bool:
        return rng.random() < self.duplicate_rate

    def truncates_id(self, rng: random.Random) -> bool:
        return rng.random() < self.truncate_rate

    def emits_ghost(self, rng: random.Random) -> bool:
        return rng.random() < self.ghost_rate

    def corrupt_epc(self, epc: str, rng: random.Random) -> str:
        """Truncate an EPC at a random cut point (always invalid)."""
        cut = rng.randint(1, max(1, len(epc) - 1))
        return epc[:cut]
