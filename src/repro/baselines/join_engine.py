"""A relational window-join evaluator for SEQ queries.

This is the comparison point for the engine benchmarks (experiment E9) and
an independent oracle for the correctness tests: it shares no evaluation
code with the plan-based engine beyond expression compilation.

Evaluation strategy, per arriving event of the final component's type:

1. evict buffered events older than the window;
2. nested-loop join the per-component buffers under the strict temporal
   order constraint, producing every candidate sequence ending here;
3. apply all WHERE predicates to each candidate (no pushdown, no
   partitioning — the whole point of the baseline);
4. check negated components against full per-type histories (trailing
   negation is buffered until its interval closes, as in the engine);
5. evaluate the RETURN clause.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable, Iterator

from repro.core.expressions import EvalContext, compile_expr, \
    compile_predicate
from repro.errors import PlanError
from repro.events.event import CompositeEvent, Event
from repro.indexes import Interval, TimeIndex
from repro.lang.semantics import AnalyzedQuery


class _NegativeHistory:
    __slots__ = ("variable", "event_types", "prev_index", "next_index",
                 "predicates", "index")

    def __init__(self, variable: str, event_types: tuple[str, ...],
                 prev_index: int, next_index: int,
                 predicates: list[Callable[[EvalContext], bool]]):
        self.variable = variable
        self.event_types = event_types
        self.prev_index = prev_index
        self.next_index = next_index
        self.predicates = predicates
        self.index = TimeIndex()


class WindowJoinEngine:
    """Evaluate one analyzed SEQ query by windowed nested-loop joins."""

    def __init__(self, analyzed: AnalyzedQuery, functions: Any = None,
                 system: Any = None):
        if analyzed.has_kleene:
            raise PlanError(
                "the window-join baseline does not support Kleene "
                "components")
        self._analyzed = analyzed
        self._functions = functions
        self._system = system
        positives = analyzed.positives
        self._n = len(positives)
        self._variables = [component.variable for component in positives]
        self._types = [component.event_types for component in positives]
        self._window = analyzed.window
        self._buffers = [TimeIndex() for _ in range(self._n)]

        # every WHERE predicate over positive variables, evaluated late
        self._predicates: list[Callable[[EvalContext], bool]] = []
        for infos in analyzed.component_filters.values():
            self._predicates.extend(compile_predicate(info.expr)
                                    for info in infos)
        self._predicates.extend(compile_predicate(info.expr)
                                for info in analyzed.selection_predicates)

        self._negatives: list[_NegativeHistory] = []
        for component, prev_index, next_index in analyzed.negation_layout():
            predicates = [compile_predicate(info.expr) for info in
                          analyzed.negation_predicates[component.variable]]
            self._negatives.append(_NegativeHistory(
                component.variable, component.event_types,
                prev_index, next_index, predicates))

        self._return_items = [(item.name, compile_expr(item.expr))
                              for item in analyzed.return_items]
        # (deadline, bindings) for trailing negation
        self._pending: list[tuple[float, dict[str, Event]]] = []
        self._watermark = -math.inf
        self.joins_attempted = 0  # candidate tuples enumerated (for benches)

    # -- streaming -----------------------------------------------------------

    def feed(self, event: Event) -> list[CompositeEvent]:
        outputs: list[CompositeEvent] = []
        self._watermark = event.timestamp

        for history in self._negatives:
            if event.type in history.event_types:
                history.index.append(event)

        outputs.extend(self._release_pending())

        if self._window is not None:
            horizon = event.timestamp - self._window
            for buffer in self._buffers:
                buffer.prune_before(horizon)

        if event.type in self._types[-1]:
            for bindings in self._enumerate(event):
                outputs.extend(self._evaluate(bindings))

        # insert after joining so the event never precedes itself
        for index, event_types in enumerate(self._types):
            if event.type in event_types:
                self._buffers[index].append(event)
        return outputs

    def flush(self) -> list[CompositeEvent]:
        outputs = []
        for _, bindings in self._pending:
            if self._passes_negation(bindings, trailing_only=True,
                                     closed=True):
                outputs.append(self._transform(bindings))
        self._pending.clear()
        return outputs

    def run(self, events: Iterable[Event]) -> Iterator[CompositeEvent]:
        for event in events:
            yield from self.feed(event)
        yield from self.flush()

    # -- join enumeration ------------------------------------------------------

    def _enumerate(self, last: Event) -> Iterator[dict[str, Event]]:
        chosen: list[Event | None] = [None] * self._n
        chosen[-1] = last
        min_ts = (last.timestamp - self._window
                  if self._window is not None else None)
        yield from self._descend(self._n - 2, last.timestamp, min_ts, chosen)

    def _descend(self, index: int, before_ts: float,
                 min_ts: float | None,
                 chosen: list[Event | None]) -> Iterator[dict[str, Event]]:
        if index < 0:
            self.joins_attempted += 1
            yield {variable: event for variable, event
                   in zip(self._variables, chosen)
                   if event is not None}
            return
        interval = Interval(
            min_ts if min_ts is not None else -math.inf, before_ts,
            low_inclusive=True, high_inclusive=False)
        for event in self._buffers[index].range(interval):
            chosen[index] = event
            yield from self._descend(index - 1, event.timestamp, min_ts,
                                     chosen)
        chosen[index] = None

    # -- filtering and output --------------------------------------------------

    def _evaluate(self, bindings: dict[str, Event]) -> list[CompositeEvent]:
        context = EvalContext(bindings, self._functions, self._system)
        for predicate in self._predicates:
            if not predicate(context):
                return []
        if not self._passes_negation(bindings, trailing_only=False,
                                     closed=False):
            return []
        deadline = self._trailing_deadline(bindings)
        if deadline is not None and self._watermark <= deadline:
            self._pending.append((deadline, bindings))
            return []
        if deadline is not None and not self._passes_negation(
                bindings, trailing_only=True, closed=True):
            return []
        return [self._transform(bindings)]

    def _trailing_deadline(self, bindings: dict[str, Event]) -> float | None:
        if not any(history.next_index == self._n
                   for history in self._negatives):
            return None
        start = bindings[self._variables[0]].timestamp
        return start + self._window if self._window is not None \
            else math.inf

    def _release_pending(self) -> list[CompositeEvent]:
        if not self._pending:
            return []
        released: list[CompositeEvent] = []
        remaining: list[tuple[float, dict[str, Event]]] = []
        for deadline, bindings in self._pending:
            if self._watermark > deadline:
                if self._passes_negation(bindings, trailing_only=True,
                                         closed=True):
                    released.append(self._transform(bindings))
            else:
                remaining.append((deadline, bindings))
        self._pending = remaining
        return released

    def _passes_negation(self, bindings: dict[str, Event],
                         trailing_only: bool, closed: bool) -> bool:
        for history in self._negatives:
            is_trailing = history.next_index == self._n
            if trailing_only and not is_trailing:
                continue
            if not trailing_only and is_trailing:
                continue  # trailing is decided later, when closed
            interval = self._negation_interval(history, bindings)
            candidates = history.index.range(interval)
            if not candidates:
                continue
            if not history.predicates:
                return False
            base = EvalContext(bindings, self._functions, self._system)
            for candidate in candidates:
                context = base.rebind(history.variable, candidate)
                if all(predicate(context)
                       for predicate in history.predicates):
                    return False
        return True

    def _negation_interval(self, history: _NegativeHistory,
                           bindings: dict[str, Event]) -> Interval:
        first_ts = bindings[self._variables[0]].timestamp
        last_ts = bindings[self._variables[-1]].timestamp
        if history.prev_index < 0:
            low = (last_ts - self._window
                   if self._window is not None else -math.inf)
            return Interval(low, first_ts, low_inclusive=True,
                            high_inclusive=False)
        if history.next_index >= self._n:
            high = (first_ts + self._window
                    if self._window is not None else math.inf)
            return Interval(last_ts, high, low_inclusive=False,
                            high_inclusive=True)
        prev_ts = bindings[self._variables[history.prev_index]].timestamp
        next_ts = bindings[self._variables[history.next_index]].timestamp
        return Interval(prev_ts, next_ts, low_inclusive=False,
                        high_inclusive=False)

    def _transform(self, bindings: dict[str, Event]) -> CompositeEvent:
        context = EvalContext(bindings, self._functions, self._system)
        attributes = {name: closure(context)
                      for name, closure in self._return_items}
        timestamps = [event.timestamp for event in bindings.values()]
        return CompositeEvent(self._analyzed.output_type, attributes,
                              bindings, min(timestamps), max(timestamps),
                              stream=self._analyzed.output_stream)
