"""Baseline evaluators the paper's approach is compared against.

:class:`~repro.baselines.join_engine.WindowJoinEngine` evaluates SEQ queries
the way a relational stream system would: per-type window buffers joined by
nested loops on each arrival of the final component's type, with predicates
and temporal order applied as join conditions and negation as an anti-join.
It is semantically equivalent to the SASE plan (the tests use it as a
differential oracle) but pays the full cross-product before filtering —
exactly the "large intermediate result sets" issue the paper's optimizations
target.
"""

from repro.baselines.join_engine import WindowJoinEngine

__all__ = ["WindowJoinEngine"]
