"""Non-deterministic finite automaton model for sequence patterns.

The sequence scan operator is "based on a Non-deterministic Finite Automata
based model which can read query-specific event sequences efficiently"
(Section 2.1.2).  :func:`compile_pattern` turns the positive components of a
SEQ pattern into an :class:`NFA`; the engine drives its states with active
instance stacks, and the tests use :meth:`NFA.accepts` as an independent
acceptance oracle.
"""

from repro.nfa.compiler import compile_pattern
from repro.nfa.model import NFA, NfaState, Transition

__all__ = ["NFA", "NfaState", "Transition", "compile_pattern"]
