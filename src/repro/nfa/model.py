"""NFA states and transitions for SEQ pattern matching.

The automaton for ``SEQ(E1 v1, ..., En vn)`` has states ``S0 .. Sn`` where
``S0`` is the start state and ``Sn`` accepts.  From ``S_{i}`` a *take*
transition on type ``E_{i+1}`` advances to ``S_{i+1}``; an *ignore*
self-loop on any type keeps the state (this encodes the language's
all-matches semantics: events that are not selected may freely occur
between selected ones).  A Kleene component additionally has a take
self-loop on its own type at its post-state.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.events.event import Event


class TransitionKind(enum.Enum):
    TAKE = "take"          # consume the event into the match, advance
    KLEENE_TAKE = "kleene"  # consume another event into a Kleene binding
    IGNORE = "ignore"      # skip the event, stay


@dataclass(frozen=True)
class Transition:
    source: int
    target: int
    kind: TransitionKind
    event_type: str | None  # None = any type (ignore edges)
    alt_types: tuple[str, ...] = ()  # extra accepted types (ANY components)

    def matches(self, event: Event) -> bool:
        if self.event_type is None:
            return True
        return event.type == self.event_type or \
            event.type in self.alt_types


@dataclass
class NfaState:
    """One NFA state; ``component`` is the index of the positive pattern
    component whose acceptance leads *into* this state (None for start)."""

    index: int
    component: int | None
    is_accepting: bool
    transitions: list[Transition] = field(default_factory=list)


class NFA:
    """The compiled automaton over the positive components of a pattern."""

    def __init__(self, states: Sequence[NfaState],
                 component_types: Sequence[str],
                 kleene_components: frozenset[int],
                 component_alt_types: Sequence[tuple[str, ...]] = ()):
        if not states:
            raise ValueError("an NFA needs at least a start state")
        self.states = list(states)
        self.component_types = tuple(component_types)
        self.component_alt_types = (tuple(component_alt_types)
                                    if component_alt_types
                                    else tuple(() for _ in
                                               self.component_types))
        self.kleene_components = kleene_components

    def component_accepts(self, index: int, event_type: str) -> bool:
        """Does positive component *index* accept *event_type*?"""
        return (self.component_types[index] == event_type
                or event_type in self.component_alt_types[index])

    @property
    def start(self) -> NfaState:
        return self.states[0]

    @property
    def accepting(self) -> NfaState:
        return self.states[-1]

    @property
    def size(self) -> int:
        return len(self.states)

    def component_for_type(self, event_type: str) -> list[int]:
        """All positive-component indexes accepting *event_type* (a type
        can appear several times in one pattern)."""
        return [index for index in range(len(self.component_types))
                if self.component_accepts(index, event_type)]

    def step(self, active: Iterable[int], event: Event) -> set[int]:
        """One NFA step for set-of-states simulation: the states reachable
        from *active* after reading *event* (including ignore self-loops)."""
        result: set[int] = set()
        for state_index in active:
            for transition in self.states[state_index].transitions:
                if transition.matches(event):
                    result.add(transition.target)
        return result

    def accepts(self, events: Sequence[Event]) -> bool:
        """Oracle: is there a run that *selects exactly* ``events`` in order
        as the pattern's positive components (with Kleene components
        absorbing one or more consecutive selected events)?

        Timestamps must be strictly increasing between selected events; the
        caller is responsible for having chosen the events from a stream.
        """
        for first, second in zip(events, events[1:]):
            if second.timestamp <= first.timestamp:
                return False
        # Simulate selection-only runs: state index == how many components
        # fully matched; Kleene components may consume extra events.
        active = {0}
        for event in events:
            advanced: set[int] = set()
            for state in active:
                if state < len(self.component_types) and \
                        self.component_accepts(state, event.type):
                    advanced.add(state + 1)
                if state > 0 and (state - 1) in self.kleene_components \
                        and self.component_accepts(state - 1, event.type):
                    advanced.add(state)  # stay, absorbing into Kleene
            active = advanced
            if not active:
                return False
        return len(self.component_types) in active

    def __repr__(self) -> str:
        parts = []
        for index, name in enumerate(self.component_types):
            label = "|".join((name, *self.component_alt_types[index]))
            parts.append(label + ("+" if index in self.kleene_components
                                  else ""))
        return f"NFA(SEQ({', '.join(parts)}), {self.size} states)"
