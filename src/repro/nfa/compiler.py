"""Compile a SEQ pattern's positive components into an NFA.

Negated components do not appear in the automaton: the paper's plan
evaluates negation in a downstream operator over the sequences the NFA
produced.  Kleene components (the SASE+ extension) compile to a take edge
plus a take self-loop.
"""

from __future__ import annotations

from repro.errors import PlanError
from repro.lang.ast import PatternComponent, SeqPattern
from repro.nfa.model import NFA, NfaState, Transition, TransitionKind


def compile_pattern(pattern: SeqPattern) -> NFA:
    """Build the NFA for *pattern*'s positive components."""
    positives: list[PatternComponent] = list(pattern.positives)
    if not positives:
        raise PlanError("cannot compile a pattern with no positive "
                        "components")
    states = [NfaState(index=0, component=None, is_accepting=False)]
    for index, component in enumerate(positives):
        states.append(NfaState(
            index=index + 1,
            component=index,
            is_accepting=(index == len(positives) - 1)))

    kleene = frozenset(index for index, component in enumerate(positives)
                       if component.kleene)

    for index, component in enumerate(positives):
        states[index].transitions.append(Transition(
            source=index, target=index + 1, kind=TransitionKind.TAKE,
            event_type=component.event_type,
            alt_types=component.alt_types))
        # ignore self-loop: any event may be skipped (all-matches semantics)
        states[index].transitions.append(Transition(
            source=index, target=index, kind=TransitionKind.IGNORE,
            event_type=None))
        if component.kleene:
            states[index + 1].transitions.append(Transition(
                source=index + 1, target=index + 1,
                kind=TransitionKind.KLEENE_TAKE,
                event_type=component.event_type,
                alt_types=component.alt_types))
    # ignore self-loop on the accepting state too (matching continues past
    # a completed sequence)
    states[-1].transitions.append(Transition(
        source=len(positives), target=len(positives),
        kind=TransitionKind.IGNORE, event_type=None))

    return NFA(states,
               [component.event_type for component in positives],
               kleene,
               [component.alt_types for component in positives])
